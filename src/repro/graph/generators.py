"""Random graph models and the paper's synthetic-data methodology.

The experimental section of the paper builds its synthetic single graphs by

1. generating a *background* graph from either the Erdős–Rényi ``G(n, p)``
   model or the Barabási–Albert preferential-attachment model,
2. assigning vertex labels uniformly from a label alphabet of size ``f``, and
3. *injecting* a number of hand-built large patterns (size ``|V_L|``, each
   embedded ``L_sup`` times) and small patterns (size ``|V_S|``, embedded
   ``S_sup`` times) by overwriting the labels of randomly chosen background
   vertices and adding the pattern's edges between them.

This module implements all three steps.  Injection records where each copy
went so tests and benchmarks can verify that the miners recover the planted
patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .frozen import FrozenGraph, freeze
from .labeled_graph import GraphError, LabeledGraph, Vertex


def _require_mutable(graph: LabeledGraph, operation: str) -> None:
    if isinstance(graph, FrozenGraph):
        raise GraphError(
            f"{operation} mutates the graph and needs the mutable builder; "
            "thaw() the FrozenGraph first (freeze again once construction is done)"
        )


def _rng(seed_or_rng: Optional[object]) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


# ---------------------------------------------------------------------- #
# label helpers
# ---------------------------------------------------------------------- #
def label_alphabet(size: int, prefix: str = "L") -> List[str]:
    """A label alphabet of ``size`` distinct strings, e.g. ``['L0', ..]``."""
    if size < 1:
        raise ValueError("label alphabet must have at least one symbol")
    return [f"{prefix}{i}" for i in range(size)]


def assign_random_labels(
    graph: LabeledGraph,
    labels: Sequence[str],
    seed: Optional[object] = None,
) -> None:
    """(Re)label every vertex of ``graph`` uniformly at random from ``labels``.

    Works in place by rebuilding the label index; vertex identities and edges
    are preserved.
    """
    _require_mutable(graph, "assign_random_labels")
    rng = _rng(seed)
    relabel = {v: rng.choice(list(labels)) for v in graph.vertices()}
    edges = list(graph.edges())
    fresh = LabeledGraph()
    for v, label in relabel.items():
        fresh.add_vertex(v, label)
    for u, v in edges:
        fresh.add_edge(u, v)
    # Swap internals into the caller's object so the operation is in-place.
    # Adjacency is unchanged (the neighbor cache stays valid) but every label
    # may have moved, so the label-set cache must be dropped.
    graph._labels = fresh._labels
    graph._adj = fresh._adj
    graph._label_index = fresh._label_index
    graph._num_edges = fresh._num_edges
    graph._label_set_cache = {}


# ---------------------------------------------------------------------- #
# background models
# ---------------------------------------------------------------------- #
def erdos_renyi_graph(
    num_vertices: int,
    average_degree: float,
    num_labels: int,
    seed: Optional[object] = None,
) -> LabeledGraph:
    """``G(n, m)`` Erdős–Rényi graph with ``m = n * average_degree / 2`` edges.

    The paper parameterises its random graphs by average degree ``d`` (Table
    1), so we expose the same knob rather than the edge probability ``p``.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if average_degree < 0:
        raise ValueError("average_degree must be non-negative")
    rng = _rng(seed)
    labels = label_alphabet(num_labels)
    graph = LabeledGraph()
    for v in range(num_vertices):
        graph.add_vertex(v, rng.choice(labels))
    target_edges = int(round(num_vertices * average_degree / 2.0))
    max_edges = num_vertices * (num_vertices - 1) // 2
    target_edges = min(target_edges, max_edges)
    attempts = 0
    while graph.num_edges < target_edges and attempts < 50 * target_edges + 100:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        attempts += 1
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    num_labels: int,
    seed: Optional[object] = None,
) -> LabeledGraph:
    """Barabási–Albert scale-free graph (preferential attachment).

    Each new vertex attaches to ``edges_per_vertex`` existing vertices chosen
    proportionally to their degree, which yields the power-law degree
    distribution the paper uses for its scale-free experiments.
    """
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be at least 1")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = _rng(seed)
    labels = label_alphabet(num_labels)
    graph = LabeledGraph()
    # Seed clique-ish core of edges_per_vertex + 1 vertices.
    core = edges_per_vertex + 1
    for v in range(core):
        graph.add_vertex(v, rng.choice(labels))
    for u in range(core):
        for v in range(u + 1, core):
            graph.add_edge(u, v)
    # Repeated-endpoints list drives preferential attachment.
    endpoints: List[int] = []
    for u, v in graph.edges():
        endpoints.extend((u, v))
    for new in range(core, num_vertices):
        graph.add_vertex(new, rng.choice(labels))
        targets: set = set()
        while len(targets) < edges_per_vertex:
            targets.add(rng.choice(endpoints))
        for t in targets:
            graph.add_edge(new, t)
            endpoints.extend((new, t))
    return graph


# ---------------------------------------------------------------------- #
# pattern construction
# ---------------------------------------------------------------------- #
def random_connected_pattern(
    num_vertices: int,
    labels: Sequence[str],
    extra_edge_probability: float = 0.25,
    seed: Optional[object] = None,
    max_diameter: Optional[int] = None,
) -> LabeledGraph:
    """A random connected labeled pattern of ``num_vertices`` vertices.

    Built as a random spanning tree plus extra edges with probability
    ``extra_edge_probability`` per non-tree pair.  If ``max_diameter`` is
    given the tree is grown breadth-first so the result respects the bound
    (extra edges can only shrink distances).
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    rng = _rng(seed)
    pattern = LabeledGraph()
    label_list = list(labels)
    for v in range(num_vertices):
        pattern.add_vertex(v, rng.choice(label_list))
    if num_vertices == 1:
        return pattern

    depth = {0: 0}
    for v in range(1, num_vertices):
        if max_diameter is None:
            parent = rng.randrange(v)
        else:
            limit = max(1, max_diameter // 2)
            eligible = [u for u in range(v) if depth[u] < limit]
            parent = rng.choice(eligible) if eligible else rng.randrange(v)
        pattern.add_edge(v, parent)
        depth[v] = depth[parent] + 1
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if not pattern.has_edge(u, v) and rng.random() < extra_edge_probability:
                pattern.add_edge(u, v)
    return pattern


@dataclass
class InjectedPattern:
    """Record of one planted pattern and all the places it was planted."""

    pattern: LabeledGraph
    embeddings: List[Dict[int, Vertex]] = field(default_factory=list)

    @property
    def support(self) -> int:
        return len(self.embeddings)


def inject_pattern(
    graph: LabeledGraph,
    pattern: LabeledGraph,
    copies: int,
    seed: Optional[object] = None,
    allow_overlap: bool = False,
    reserved: Optional[set] = None,
) -> InjectedPattern:
    """Plant ``copies`` embeddings of ``pattern`` into ``graph`` in place.

    Each copy picks ``|V(pattern)|`` distinct background vertices, rewrites
    their labels to the pattern's labels and adds the pattern's edges between
    them.  Distinct copies use disjoint vertex sets unless ``allow_overlap``.

    ``reserved`` is an optional set of vertices that must not be touched —
    typically the vertices already claimed by previously injected patterns,
    so that one injection cannot relabel (and thereby corrupt) another.  The
    set is updated in place with the vertices this call claims.

    Returns the injection record with the vertex maps actually used.
    """
    _require_mutable(graph, "inject_pattern")
    rng = _rng(seed)
    record = InjectedPattern(pattern=pattern.copy())
    pattern_vertices = sorted(pattern.vertices(), key=repr)
    available = [v for v in graph.vertices()]
    used: set = set() if reserved is None else reserved
    claimed_here: set = set()
    for _ in range(copies):
        pool = [v for v in available if allow_overlap or (v not in used and v not in claimed_here)]
        if len(pool) < len(pattern_vertices):
            raise ValueError(
                "not enough background vertices left to inject another copy "
                f"(need {len(pattern_vertices)}, have {len(pool)})"
            )
        chosen = rng.sample(pool, len(pattern_vertices))
        mapping = dict(zip(pattern_vertices, chosen))
        # Rewrite labels (rebuild label index entries for the affected vertices).
        for p_vertex, g_vertex in mapping.items():
            _set_label(graph, g_vertex, pattern.label(p_vertex))
        for u, v in pattern.edges():
            gu, gv = mapping[u], mapping[v]
            if not graph.has_edge(gu, gv):
                graph.add_edge(gu, gv)
        claimed_here.update(chosen)
        record.embeddings.append(mapping)
    used.update(claimed_here)
    return record


def _set_label(graph: LabeledGraph, vertex: Vertex, label: str) -> None:
    """Overwrite a single vertex label, keeping the label index consistent."""
    old = graph._labels[vertex]
    if old == label:
        return
    graph._label_index[old].discard(vertex)
    if not graph._label_index[old]:
        del graph._label_index[old]
    graph._labels[vertex] = label
    graph._label_index.setdefault(label, set()).add(vertex)
    graph._label_set_cache.pop(old, None)
    graph._label_set_cache.pop(label, None)


# ---------------------------------------------------------------------- #
# the paper's full synthetic recipe
# ---------------------------------------------------------------------- #
@dataclass
class SyntheticSingleGraph:
    """A background graph plus the records of every injected pattern.

    ``graph`` is a mutable :class:`LabeledGraph` by default; when the recipe
    is asked for a frozen snapshot (``frozen=True``) it is an immutable
    :class:`FrozenGraph` ready for mining.
    """

    graph: LabeledGraph
    large_patterns: List[InjectedPattern]
    small_patterns: List[InjectedPattern]

    @property
    def planted_large_sizes(self) -> List[int]:
        return [p.pattern.num_vertices for p in self.large_patterns]

    def freeze(self) -> "SyntheticSingleGraph":
        """The same dataset with the data graph as an immutable CSR snapshot."""
        return SyntheticSingleGraph(
            graph=freeze(self.graph),
            large_patterns=self.large_patterns,
            small_patterns=self.small_patterns,
        )


def synthetic_single_graph(
    num_vertices: int,
    num_labels: int,
    average_degree: float,
    num_large_patterns: int,
    large_pattern_vertices: int,
    large_pattern_support: int,
    num_small_patterns: int,
    small_pattern_vertices: int,
    small_pattern_support: int,
    seed: Optional[object] = None,
    model: str = "erdos_renyi",
    max_pattern_diameter: Optional[int] = None,
    frozen: bool = False,
) -> SyntheticSingleGraph:
    """Generate a synthetic single graph exactly the way the paper does.

    Parameters mirror Table 1: ``|V|``, ``f``, ``d``, ``m``/``|V_L|``/``L_sup``
    for the large patterns and ``n``/``|V_S|``/``S_sup`` for the small ones.
    ``model`` selects the background generator (``"erdos_renyi"`` or
    ``"barabasi_albert"``).  ``frozen=True`` returns the finished data graph
    as an immutable CSR snapshot (construction still happens on the mutable
    builder; the freeze is the last step).
    """
    rng = _rng(seed)
    labels = label_alphabet(num_labels)
    if model == "erdos_renyi":
        graph = erdos_renyi_graph(num_vertices, average_degree, num_labels, seed=rng)
    elif model == "barabasi_albert":
        m = max(1, int(round(average_degree / 2)))
        graph = barabasi_albert_graph(num_vertices, m, num_labels, seed=rng)
    else:
        raise ValueError(f"unknown background model {model!r}")

    # All injected copies of all patterns claim disjoint background vertices so
    # that later injections never relabel (corrupt) earlier ones.
    reserved: set = set()
    large_records: List[InjectedPattern] = []
    for _ in range(num_large_patterns):
        pattern = random_connected_pattern(
            large_pattern_vertices,
            labels,
            extra_edge_probability=0.15,
            seed=rng,
            max_diameter=max_pattern_diameter,
        )
        large_records.append(
            inject_pattern(graph, pattern, large_pattern_support, seed=rng, reserved=reserved)
        )

    small_records: List[InjectedPattern] = []
    for _ in range(num_small_patterns):
        pattern = random_connected_pattern(
            small_pattern_vertices, labels, extra_edge_probability=0.3, seed=rng
        )
        small_records.append(
            inject_pattern(graph, pattern, small_pattern_support, seed=rng, reserved=reserved)
        )

    result = SyntheticSingleGraph(
        graph=graph, large_patterns=large_records, small_patterns=small_records
    )
    return result.freeze() if frozen else result
