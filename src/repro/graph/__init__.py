"""Labeled-graph substrate for the SpiderMine reproduction.

Public surface:

* :class:`LabeledGraph` and :func:`graph_from_edges` — the mutable builder;
* :class:`FrozenGraph`, :func:`freeze` / :func:`thaw` — the immutable CSR
  snapshot the miners run on, and :class:`GraphView`, the read-only protocol
  both backends implement;
* traversal / metric helpers (:func:`diameter`, :func:`bfs_distances`, ...);
* :func:`canonical_code` / :func:`canonical_form` — canonical labeling;
* :class:`SubgraphMatcher` (candidate-domain engine), :func:`find_embeddings`,
  :func:`find_anchored_embeddings`, :func:`are_isomorphic`,
  :func:`matcher_digest` — the cross-backend parity fingerprint;
* random graph models and the paper's synthetic injection recipe;
* plain-text / JSON I/O;
* :mod:`~repro.graph.kernels` — optional numpy kernels behind the CSR hot
  paths (domain seeding, arc consistency, row intersection, posting merge),
  with scalar fallbacks everywhere they are dispatched.
"""

from .labeled_graph import GraphError, LabeledGraph, graph_from_edges, normalise_edge
from .view import GraphView
from .frozen import GRAPH_BACKENDS, FrozenGraph, coerce_backend, freeze, thaw
from .algorithms import (
    bfs_distances,
    center_vertices,
    connected_components,
    degeneracy_ordered_independent_set,
    degree_histogram,
    diameter,
    eccentricity,
    effective_diameter,
    exact_maximum_independent_set,
    graph_radius,
    greedy_maximum_independent_set,
    is_connected,
    is_r_bounded_from,
    radius_from,
    shortest_path_length,
    spanning_tree_edges,
    triangles,
)
from .canonical import are_isomorphic_by_code, canonical_code, canonical_form, canonical_order
from .isomorphism import (
    MatcherStats,
    SubgraphMatcher,
    are_isomorphic,
    count_automorphisms,
    embedding_edge_image,
    embedding_image,
    find_anchored_embeddings,
    find_embeddings,
    matcher_digest,
    subgraph_exists,
)
from .generators import (
    InjectedPattern,
    SyntheticSingleGraph,
    assign_random_labels,
    barabasi_albert_graph,
    erdos_renyi_graph,
    inject_pattern,
    label_alphabet,
    random_connected_pattern,
    synthetic_single_graph,
)
from . import io
from . import kernels

__all__ = [
    "GraphError",
    "LabeledGraph",
    "graph_from_edges",
    "normalise_edge",
    "GraphView",
    "FrozenGraph",
    "GRAPH_BACKENDS",
    "coerce_backend",
    "freeze",
    "thaw",
    "bfs_distances",
    "center_vertices",
    "connected_components",
    "degeneracy_ordered_independent_set",
    "degree_histogram",
    "diameter",
    "eccentricity",
    "effective_diameter",
    "exact_maximum_independent_set",
    "graph_radius",
    "greedy_maximum_independent_set",
    "is_connected",
    "is_r_bounded_from",
    "radius_from",
    "shortest_path_length",
    "spanning_tree_edges",
    "triangles",
    "are_isomorphic_by_code",
    "canonical_code",
    "canonical_form",
    "canonical_order",
    "MatcherStats",
    "SubgraphMatcher",
    "are_isomorphic",
    "count_automorphisms",
    "embedding_edge_image",
    "embedding_image",
    "find_anchored_embeddings",
    "find_embeddings",
    "matcher_digest",
    "subgraph_exists",
    "InjectedPattern",
    "SyntheticSingleGraph",
    "assign_random_labels",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "inject_pattern",
    "label_alphabet",
    "random_connected_pattern",
    "synthetic_single_graph",
    "io",
]
