"""The read-only graph protocol shared by every backend.

SpiderMine separates two very different graph roles:

* **construction** — datasets are assembled edge by edge, labels get
  overwritten during pattern injection, and pattern graphs grow one vertex at
  a time.  This needs a mutable representation
  (:class:`~repro.graph.labeled_graph.LabeledGraph`).
* **mining** — Stage I/II/III and all baselines only *read* the data graph:
  neighbor probes, label lookups, BFS sweeps.  This is the hot path, and it
  benefits from an immutable, array-compacted representation
  (:class:`~repro.graph.frozen.FrozenGraph`).

:class:`GraphView` is the structural protocol both implement.  Every function
that only reads a graph is annotated with it, so any object providing the
surface below — including future backends (mmap-backed, sharded, remote) —
can be dropped into the miners without touching them.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Protocol,
    Set,
    runtime_checkable,
)

from .labeled_graph import Edge, Label, Vertex


@runtime_checkable
class GraphView(Protocol):
    """Read-only surface of a vertex-labeled undirected graph.

    Implementations: :class:`~repro.graph.labeled_graph.LabeledGraph`
    (mutable, dict-of-sets) and :class:`~repro.graph.frozen.FrozenGraph`
    (immutable, CSR).  ``isinstance(obj, GraphView)`` performs a structural
    check (``typing.runtime_checkable``): it verifies the methods exist, not
    their signatures.
    """

    # -- size ----------------------------------------------------------- #
    def __contains__(self, vertex: Vertex) -> bool: ...
    def __len__(self) -> int: ...
    def __iter__(self) -> Iterator[Vertex]: ...

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    # -- vertices, edges, labels ---------------------------------------- #
    def vertices(self) -> Iterator[Vertex]: ...
    def edges(self) -> Iterator[Edge]: ...
    def has_edge(self, u: Vertex, v: Vertex) -> bool: ...
    def label(self, vertex: Vertex) -> Label: ...
    def labels(self) -> Dict[Vertex, Label]: ...
    def label_set(self) -> Set[Label]: ...
    def label_counts(self) -> Counter: ...
    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]: ...

    # -- local structure ------------------------------------------------- #
    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]: ...
    def degree(self, vertex: Vertex) -> int: ...
    def average_degree(self) -> float: ...
    def max_degree(self) -> int: ...
    def degree_sequence(self) -> List[int]: ...
    def density(self) -> float: ...

    # -- traversal / derived graphs -------------------------------------- #
    def bfs_within(self, source: Vertex, radius: int) -> Dict[Vertex, int]: ...
    def subgraph(self, vertices) -> "object": ...
