"""Labeled (sub)graph isomorphism.

Two related problems are needed by the miners:

* **graph isomorphism** between two small patterns — answered either through
  canonical codes (:mod:`repro.graph.canonical`) or by the matcher here;
* **subgraph isomorphism enumeration**: find every embedding of a pattern in
  the (much larger) data graph.  This powers support counting for the
  baselines and the verification paths of SpiderMine.

The matcher is a VF2-style backtracking search with the standard pruning
rules: label equality, degree feasibility, and connectivity-driven candidate
ordering (the next pattern vertex matched is always adjacent to an already
matched one whenever the pattern is connected, which keeps the candidate set
small — neighbours of already-mapped data vertices only).

Embeddings are *induced on edges* (not vertices): an embedding is an injective
map ``f`` on pattern vertices preserving labels with ``(u,v) ∈ E(P) ⇒
(f(u),f(v)) ∈ E(G)``.  That is the standard subgraph (monomorphism) semantics
used by the paper and by all compared systems.  Set ``induced=True`` for the
stricter induced-subgraph semantics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .labeled_graph import LabeledGraph, Vertex, normalise_edge
from .view import GraphView

Mapping = Dict[Vertex, Vertex]


class SubgraphMatcher:
    """Enumerates embeddings of ``pattern`` in ``target``."""

    def __init__(
        self,
        pattern: LabeledGraph,
        target: GraphView,
        induced: bool = False,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self._order = self._matching_order()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def find_embeddings(
        self,
        limit: Optional[int] = None,
        anchor: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> List[Mapping]:
        """All embeddings (pattern-vertex → target-vertex maps), up to ``limit``.

        ``anchor=(p, t)`` forces pattern vertex ``p`` to map to target vertex
        ``t`` — used when enumerating spiders around a fixed head.
        """
        return list(self.iter_embeddings(limit=limit, anchor=anchor))

    def iter_embeddings(
        self,
        limit: Optional[int] = None,
        anchor: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> Iterator[Mapping]:
        if self.pattern.num_vertices == 0:
            return
        if self.pattern.num_vertices > self.target.num_vertices:
            return
        if self.pattern.num_edges > self.target.num_edges:
            return
        if not self._labels_feasible():
            return
        order = self._order
        if anchor is not None:
            p_anchor, t_anchor = anchor
            if p_anchor not in self.pattern or t_anchor not in self.target:
                return
            if self.pattern.label(p_anchor) != self.target.label(t_anchor):
                return
            order = [p_anchor] + [v for v in order if v != p_anchor]
            initial: Mapping = {p_anchor: t_anchor}
            used = {t_anchor}
            start_index = 1
        else:
            initial = {}
            used = set()
            start_index = 0

        count = 0
        for mapping in self._search(order, start_index, initial, used):
            yield dict(mapping)
            count += 1
            if limit is not None and count >= limit:
                return

    def exists(self, anchor: Optional[Tuple[Vertex, Vertex]] = None) -> bool:
        """Whether at least one embedding exists."""
        for _ in self.iter_embeddings(limit=1, anchor=anchor):
            return True
        return False

    def count(self, limit: Optional[int] = None) -> int:
        """Number of embeddings (optionally capped at ``limit``)."""
        n = 0
        for _ in self.iter_embeddings(limit=limit):
            n += 1
        return n

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _labels_feasible(self) -> bool:
        target_counts = self.target.label_counts()
        for label, needed in self.pattern.label_counts().items():
            if target_counts.get(label, 0) < needed:
                return False
        return True

    def _matching_order(self) -> List[Vertex]:
        """Connectivity-first ordering: rarest label first, then BFS-expand."""
        pattern = self.pattern
        if pattern.num_vertices == 0:
            return []
        target_counts = self.target.label_counts()

        def rarity(v: Vertex) -> Tuple[int, int, str]:
            return (
                target_counts.get(pattern.label(v), 0),
                -pattern.degree(v),
                repr(v),
            )

        remaining = set(pattern.vertices())
        order: List[Vertex] = []
        while remaining:
            # Start a new component at the most selective vertex.
            start = min(remaining, key=rarity)
            order.append(start)
            remaining.discard(start)
            frontier = [v for v in pattern.neighbors(start) if v in remaining]
            while frontier:
                nxt = min(frontier, key=rarity)
                order.append(nxt)
                remaining.discard(nxt)
                frontier = [v for v in frontier if v != nxt]
                frontier.extend(
                    v for v in pattern.neighbors(nxt) if v in remaining and v not in frontier
                )
        return order

    def _candidates(
        self, p_vertex: Vertex, mapping: Mapping, used: Set[Vertex]
    ) -> Iterator[Vertex]:
        pattern, target = self.pattern, self.target
        label = pattern.label(p_vertex)
        mapped_neighbors = [u for u in pattern.neighbors(p_vertex) if u in mapping]
        if mapped_neighbors:
            # Candidates must be unused neighbours of every mapped pattern-neighbour.
            first = mapped_neighbors[0]
            candidate_pool = target.neighbors(mapping[first])
            for other in mapped_neighbors[1:]:
                candidate_pool = candidate_pool & target.neighbors(mapping[other])
            for t_vertex in candidate_pool:
                if t_vertex not in used and target.label(t_vertex) == label:
                    yield t_vertex
        else:
            for t_vertex in self.target.vertices_with_label(label):
                if t_vertex not in used:
                    yield t_vertex

    def _feasible(self, p_vertex: Vertex, t_vertex: Vertex, mapping: Mapping) -> bool:
        pattern, target = self.pattern, self.target
        if target.degree(t_vertex) < pattern.degree(p_vertex):
            return False
        t_neighbors = target.neighbors(t_vertex)
        for p_neighbor in pattern.neighbors(p_vertex):
            if p_neighbor in mapping and mapping[p_neighbor] not in t_neighbors:
                return False
        if self.induced:
            # No extra edges allowed between the new image and previously mapped images.
            p_neighbor_set = pattern.neighbors(p_vertex)
            for p_mapped, t_mapped in mapping.items():
                if t_mapped in t_neighbors and p_mapped not in p_neighbor_set:
                    return False
        return True

    def _search(
        self,
        order: Sequence[Vertex],
        index: int,
        mapping: Mapping,
        used: Set[Vertex],
    ) -> Iterator[Mapping]:
        if index == len(order):
            yield mapping
            return
        p_vertex = order[index]
        for t_vertex in self._candidates(p_vertex, mapping, used):
            if not self._feasible(p_vertex, t_vertex, mapping):
                continue
            mapping[p_vertex] = t_vertex
            used.add(t_vertex)
            yield from self._search(order, index + 1, mapping, used)
            del mapping[p_vertex]
            used.discard(t_vertex)


# ---------------------------------------------------------------------- #
# module-level conveniences
# ---------------------------------------------------------------------- #
def find_embeddings(
    pattern: LabeledGraph,
    target: GraphView,
    limit: Optional[int] = None,
    induced: bool = False,
) -> List[Mapping]:
    """All embeddings of ``pattern`` in ``target`` (possibly capped)."""
    return SubgraphMatcher(pattern, target, induced=induced).find_embeddings(limit=limit)


def subgraph_exists(pattern: LabeledGraph, target: GraphView) -> bool:
    """Whether ``pattern`` has at least one embedding in ``target``."""
    return SubgraphMatcher(pattern, target).exists()


def are_isomorphic(first: GraphView, second: GraphView) -> bool:
    """Exact labeled graph isomorphism via bidirectional size checks + VF2."""
    if first.num_vertices != second.num_vertices or first.num_edges != second.num_edges:
        return False
    if first.label_counts() != second.label_counts():
        return False
    if first.degree_sequence() != second.degree_sequence():
        return False
    return SubgraphMatcher(first, second, induced=True).exists()


def count_automorphisms(graph: LabeledGraph, limit: Optional[int] = None) -> int:
    """Number of label-preserving automorphisms of ``graph``."""
    return SubgraphMatcher(graph, graph, induced=True).count(limit=limit)


def embedding_image(mapping: Mapping) -> FrozenSet[Vertex]:
    """The set of data-graph vertices an embedding covers."""
    return frozenset(mapping.values())


def embedding_edge_image(
    pattern: LabeledGraph, mapping: Mapping
) -> FrozenSet[Tuple[Vertex, Vertex]]:
    """The set of data-graph edges an embedding covers (normalised by repr order)."""
    return frozenset(
        normalise_edge(mapping[u], mapping[v]) for u, v in pattern.edges()
    )
