"""Labeled (sub)graph isomorphism on precomputed candidate domains.

Two related problems are needed by the miners:

* **graph isomorphism** between two small patterns — answered either through
  canonical codes (:mod:`repro.graph.canonical`) or by the matcher here;
* **subgraph isomorphism enumeration**: find every embedding of a pattern in
  the (much larger) data graph.  This powers support counting for the
  baselines and the verification paths of SpiderMine.

The matcher is a backtracking search in the RI/GraphQL style: before any
search starts, every pattern vertex gets a **candidate domain** — the target
vertices with the right label, enough degree, and a neighbor-label multiset
that dominates the pattern vertex's — refined by one pass of arc-consistency
over the pattern edges.  An empty domain proves *zero* embeddings with no
search at all; otherwise the search only ever tests candidates inside their
domain.  Every domain filter is sound (it removes only vertices that can
appear in no embedding), so filtering never changes *what* is enumerated,
only how much work enumeration costs.

Two search paths share the domains:

* on a :class:`~repro.graph.frozen.FrozenGraph` target the whole search runs
  in **CSR index space** — int vertex indices, bisect probes on the sorted
  neighbor arrays, no frozenset materialisation — converting back to vertex
  ids only when an embedding is yielded;
* on the dict backend the pre-refactor path is kept as the reference
  implementation (frozenset candidate pools, now additionally filtered by the
  domains).  Because domain filtering is pruning-only, the dict path yields
  exactly the embedding *sequence* the matcher always produced.

When numpy is importable (:func:`repro.graph.kernels.numpy_available`) the
CSR path additionally runs **vectorized**: domains are seeded and
arc-consistency-refined by whole-label-class array kernels instead of
per-vertex ``Counter`` scans, and before searching, each directed pattern
edge ``(q, p)`` gets a precomputed **candidate adjacency** — every domain
member of ``q``'s neighbor row intersected with ``p``'s domain in one bulk
:func:`~repro.graph.kernels.filter_rows` pass — so the per-node inner loop
walks short pre-filtered Python lists with no label/domain probes at all.
Candidate pools keep ascending index order, which is exactly the scalar
enumeration order, so the kernel path yields the same embedding *sequence*
as the scalar CSR path (digest-pinned in ``tests/test_kernels.py``).  The
scalar CSR code is retained verbatim below as the fallback when numpy is
absent (:func:`~repro.graph.kernels.scalar_fallback` forces it for tests).

The two paths are pinned together by :func:`matcher_digest` — a canonical,
order-insensitive fingerprint of an embedding collection (the analogue of the
overlap engine's ``conflict_digest``): for any (pattern, target) pair the
dict-path digest must equal the csr-path digest, which the perf-smoke suite
and the hypothesis parity tests assert.  The pre-domain engine survives
verbatim in :mod:`repro.graph._matcher_reference` as the behavioural oracle.

Matching orders are connectivity-first (every vertex after the first of its
component is adjacent to an already-matched one).  Anchored searches rebuild
the BFS order *rooted at the anchor* — the pre-refactor code moved the anchor
to the front but kept the free-order tail, so mid-search vertices could lose
all mapped neighbors and silently fall back to whole-graph label scans
(:attr:`MatcherStats.pool_fallbacks` counts those; a regression test pins
them at zero for connected patterns).  :meth:`SubgraphMatcher.iter_anchored`
amortises one domain build over a whole batch of anchors — the Stage-I access
pattern, where a spider head is matched at every data vertex of one label.

Embeddings are *induced on edges* (not vertices): an embedding is an
injective map ``f`` on pattern vertices preserving labels with ``(u,v) ∈
E(P) ⇒ (f(u),f(v)) ∈ E(G)``.  That is the standard subgraph (monomorphism)
semantics used by the paper and by all compared systems.  Set
``induced=True`` for the stricter induced-subgraph semantics.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from . import kernels
from .frozen import FrozenGraph
from .labeled_graph import LabeledGraph, Vertex, normalise_edge
from .view import GraphView

Mapping = Dict[Vertex, Vertex]


@dataclass
class MatcherStats:
    """Work counters of one matcher instance (purely observational)."""

    #: candidates that reached the per-candidate feasibility check
    candidate_tests: int = 0
    #: candidates rejected by domain membership before any feasibility work.
    #: On the vectorized kernel path these are counted once per
    #: (pattern edge, neighbor row) when the candidate adjacency is built,
    #: not once per search visit, so anchored batches report fewer prunes
    #: than the scalar path for the same pruning power.
    domain_prunes: int = 0
    #: label-scan candidate pools used mid-search (a vertex with no mapped
    #: neighbor after the first of its component — 0 for connected patterns
    #: under both the free and the anchored order)
    pool_fallbacks: int = 0
    #: searches answered "zero embeddings" by an empty domain, before any
    #: backtracking started
    empty_domain_cutoffs: int = 0
    #: backtracking searches actually started
    searches: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Counters as a JSON-ready dict (the :class:`~repro.obs.Snapshottable` shape)."""
        return {
            "candidate_tests": self.candidate_tests,
            "domain_prunes": self.domain_prunes,
            "pool_fallbacks": self.pool_fallbacks,
            "empty_domain_cutoffs": self.empty_domain_cutoffs,
            "searches": self.searches,
        }


class SubgraphMatcher:
    """Enumerates embeddings of ``pattern`` in ``target``.

    Candidate domains are built lazily on the first query and shared by every
    subsequent query on the same instance (including whole anchored batches),
    so reuse the matcher when asking several questions about one
    (pattern, target) pair.
    """

    def __init__(
        self,
        pattern: LabeledGraph,
        target: GraphView,
        induced: bool = False,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self.stats = MatcherStats()
        self._csr: Optional[FrozenGraph] = (
            target if isinstance(target, FrozenGraph) else None
        )
        # Dispatch between the vectorized and the scalar CSR engines is
        # captured once at construction so one matcher never mixes paths.
        self._use_kernels = self._csr is not None and kernels.numpy_available()
        self._order = self._matching_order()
        # Lazily built domain state.  ``_domains_ready`` distinguishes "not
        # built yet" from "built and proven empty" (``_domains is None``).
        self._domains_ready = False
        self._domains: Optional[Dict[Vertex, Set[Vertex]]] = None          # dict path
        self._domains_ix: Optional[Dict[Vertex, List[int]]] = None         # csr path
        self._domain_sets_ix: Optional[Dict[Vertex, Set[int]]] = None      # csr path
        self._domains_np: Optional[Dict[Vertex, object]] = None            # kernel path
        # Kernel-path memos: per directed pattern edge (q, p) the
        # domain-filtered candidate adjacency, per pattern vertex the
        # index-of-domain-member map, per matching order the search context.
        self._cand_adj: Dict[Tuple[Vertex, Vertex], tuple] = {}
        self._domain_pos: Dict[Vertex, Dict[int, int]] = {}
        self._search_contexts: Dict[Tuple[Vertex, ...], tuple] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def find_embeddings(
        self,
        limit: Optional[int] = None,
        anchor: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> List[Mapping]:
        """All embeddings (pattern-vertex → target-vertex maps), up to ``limit``.

        ``anchor=(p, t)`` forces pattern vertex ``p`` to map to target vertex
        ``t`` — used when enumerating spiders around a fixed head.
        """
        return list(self.iter_embeddings(limit=limit, anchor=anchor))

    def iter_embeddings(
        self,
        limit: Optional[int] = None,
        anchor: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> Iterator[Mapping]:
        if not self._query_feasible():
            return
        if not self._ensure_domains():
            return
        if anchor is not None:
            p_anchor, t_anchor = anchor
            if p_anchor not in self.pattern or t_anchor not in self.target:
                return
            if self.pattern.label(p_anchor) != self.target.label(t_anchor):
                return
            if not self._domain_contains(p_anchor, t_anchor):
                return
            order = self._anchored_order(p_anchor)
        else:
            order = self._order
        count = 0
        for mapping in self._run_search(order, anchor):
            yield mapping
            count += 1
            if limit is not None and count >= limit:
                return

    def iter_anchored(
        self,
        p_anchor: Vertex,
        t_anchors: Optional[Iterable[Vertex]] = None,
        limit_per_anchor: Optional[int] = None,
    ) -> Iterator[Tuple[Vertex, Mapping]]:
        """Batch anchored enumeration: ``(t_anchor, embedding)`` pairs.

        One domain build and one anchored matching order are amortised over
        the whole batch — the Stage-I access pattern, where a spider head is
        matched at every data vertex of its label.  ``t_anchors`` defaults to
        the anchor vertex's full candidate domain in canonical (repr-sorted)
        order; anchors outside the domain yield nothing, exactly like the
        equivalent single-anchor query.
        """
        if p_anchor not in self.pattern:
            return
        if not self._query_feasible():
            return
        if not self._ensure_domains():
            return
        order = self._anchored_order(p_anchor)
        if t_anchors is None:
            anchors: Iterable[Vertex] = self._domain_ids(p_anchor)
        else:
            anchors = t_anchors
        label = self.pattern.label(p_anchor)
        for t_anchor in anchors:
            if t_anchor not in self.target:
                continue
            if self.target.label(t_anchor) != label:
                continue
            if not self._domain_contains(p_anchor, t_anchor):
                continue
            count = 0
            for mapping in self._run_search(order, (p_anchor, t_anchor)):
                yield t_anchor, mapping
                count += 1
                if limit_per_anchor is not None and count >= limit_per_anchor:
                    break

    def exists(self, anchor: Optional[Tuple[Vertex, Vertex]] = None) -> bool:
        """Whether at least one embedding exists."""
        for _ in self.iter_embeddings(limit=1, anchor=anchor):
            return True
        return False

    def count(self, limit: Optional[int] = None) -> int:
        """Number of embeddings (optionally capped at ``limit``)."""
        n = 0
        for _ in self.iter_embeddings(limit=limit):
            n += 1
        return n

    # ------------------------------------------------------------------ #
    # shared guards and dispatch
    # ------------------------------------------------------------------ #
    def _query_feasible(self) -> bool:
        if self.pattern.num_vertices == 0:
            return False
        if self.pattern.num_vertices > self.target.num_vertices:
            return False
        if self.pattern.num_edges > self.target.num_edges:
            return False
        return self._labels_feasible()

    def _labels_feasible(self) -> bool:
        target_counts = self.target.label_counts()
        for label, needed in self.pattern.label_counts().items():
            if target_counts.get(label, 0) < needed:
                return False
        return True

    def _run_search(
        self, order: Sequence[Vertex], anchor: Optional[Tuple[Vertex, Vertex]]
    ) -> Iterator[Mapping]:
        self.stats.searches += 1
        if self._use_kernels:
            return self._search_csr_kernels(order, anchor)
        if self._csr is not None:
            return self._search_csr(order, anchor)
        return self._search_dict(order, anchor)

    # ------------------------------------------------------------------ #
    # matching orders
    # ------------------------------------------------------------------ #
    def _rarity_key(self):
        pattern = self.pattern
        target_counts = self.target.label_counts()

        def rarity(v: Vertex) -> Tuple[int, int, str]:
            return (
                target_counts.get(pattern.label(v), 0),
                -pattern.degree(v),
                repr(v),
            )

        return rarity

    def _expand_component(
        self, start: Vertex, remaining: Set[Vertex], order: List[Vertex], rarity
    ) -> None:
        """BFS-expand one component from ``start`` (rarity-greedy frontier)."""
        pattern = self.pattern
        order.append(start)
        remaining.discard(start)
        frontier = [v for v in pattern.neighbors(start) if v in remaining]
        while frontier:
            nxt = min(frontier, key=rarity)
            order.append(nxt)
            remaining.discard(nxt)
            frontier = [v for v in frontier if v != nxt]
            frontier.extend(
                v for v in pattern.neighbors(nxt) if v in remaining and v not in frontier
            )

    def _matching_order(self) -> List[Vertex]:
        """Connectivity-first free ordering: rarest label first, BFS-expand."""
        if self.pattern.num_vertices == 0:
            return []
        rarity = self._rarity_key()
        remaining = set(self.pattern.vertices())
        order: List[Vertex] = []
        while remaining:
            start = min(remaining, key=rarity)
            self._expand_component(start, remaining, order, rarity)
        return order

    def _anchored_order(self, p_anchor: Vertex) -> List[Vertex]:
        """Connectivity-first ordering rooted at the anchor.

        The anchor's component is BFS-expanded *from the anchor*, so every
        later vertex of that component has a mapped neighbor when its turn
        comes — the pre-refactor code reused the free-order tail here, which
        broke that invariant and degraded mid-search candidate pools to
        whole-graph label scans.  Remaining components follow the free
        construction.
        """
        rarity = self._rarity_key()
        remaining = set(self.pattern.vertices())
        order: List[Vertex] = []
        self._expand_component(p_anchor, remaining, order, rarity)
        while remaining:
            start = min(remaining, key=rarity)
            self._expand_component(start, remaining, order, rarity)
        return order

    # ------------------------------------------------------------------ #
    # candidate domains
    # ------------------------------------------------------------------ #
    def _ensure_domains(self) -> bool:
        """Build the candidate domains once; False ⇒ some domain is empty."""
        if not self._domains_ready:
            self._domains_ready = True
            if self._use_kernels:
                self._build_domains_csr_numpy()
            elif self._csr is not None:
                self._build_domains_csr()
            else:
                self._build_domains_dict()
            if (self._domains is None) and (self._domains_ix is None):
                self.stats.empty_domain_cutoffs += 1
        return (self._domains is not None) or (self._domains_ix is not None)

    def _pattern_requirements(self) -> List[Tuple[Vertex, object, int, Counter]]:
        """(vertex, label, degree, neighbor-label multiset) per pattern vertex."""
        pattern = self.pattern
        out = []
        for p in pattern.vertices():
            signature = Counter(pattern.label(q) for q in pattern.neighbors(p))
            out.append((p, pattern.label(p), pattern.degree(p), signature))
        return out

    def _ac_edges(self) -> List[Tuple[Vertex, Vertex]]:
        """Pattern edges in one fixed order for the arc-consistency pass."""
        return sorted(self.pattern.edges(), key=lambda e: (repr(e[0]), repr(e[1])))

    def _build_domains_dict(self) -> None:
        target = self.target
        signature_cache: Dict[Vertex, Counter] = {}

        def target_signature(t: Vertex) -> Counter:
            sig = signature_cache.get(t)
            if sig is None:
                sig = Counter(target.label(n) for n in target.neighbors(t))
                signature_cache[t] = sig
            return sig

        domains: Dict[Vertex, Set[Vertex]] = {}
        for p, label, degree, needed in self._pattern_requirements():
            domain: Set[Vertex] = set()
            for t in target.vertices_with_label(label):
                if target.degree(t) < degree:
                    continue
                if needed:
                    sig = target_signature(t)
                    if any(sig.get(lbl, 0) < cnt for lbl, cnt in needed.items()):
                        continue
                domain.add(t)
            if not domain:
                return
            domains[p] = domain

        # One arc-consistency pass: for each pattern edge, keep only domain
        # members with at least one neighbor in the opposite domain.
        for u, v in self._ac_edges():
            for a, b in ((u, v), (v, u)):
                dom_b = domains[b]
                kept = {
                    t
                    for t in domains[a]
                    if self._has_neighbor_in_dict(t, dom_b)
                }
                if not kept:
                    return
                domains[a] = kept
        self._domains = domains

    def _has_neighbor_in_dict(self, t: Vertex, domain: Set[Vertex]) -> bool:
        neighbors = self.target.neighbors(t)
        if len(domain) < len(neighbors):
            return any(s in neighbors for s in domain)
        return any(n in domain for n in neighbors)

    def _build_domains_csr(self) -> None:
        g = self._csr
        assert g is not None
        offsets = g.offsets
        nbrs = g.neighbor_indices
        lids = g.label_ids
        signature_cache: Dict[int, Counter] = {}

        domains: Dict[Vertex, List[int]] = {}
        for p, label, degree, needed in self._pattern_requirements():
            needed_ix = Counter()
            feasible = True
            for lbl, cnt in needed.items():
                lid = g.label_id(lbl)
                if lid is None:
                    feasible = False
                    break
                needed_ix[lid] = cnt
            if not feasible:
                return
            domain: List[int] = []
            for t in g.label_member_indices(label):
                if offsets[t + 1] - offsets[t] < degree:
                    continue
                if needed_ix:
                    sig = signature_cache.get(t)
                    if sig is None:
                        sig = Counter(lids[c] for c in nbrs[offsets[t]:offsets[t + 1]])
                        signature_cache[t] = sig
                    if any(sig.get(lid, 0) < cnt for lid, cnt in needed_ix.items()):
                        continue
                domain.append(t)  # member rows ascend, so domains stay sorted
            if not domain:
                return
            domains[p] = domain

        for u, v in self._ac_edges():
            for a, b in ((u, v), (v, u)):
                dom_b = domains[b]
                dom_b_set = set(dom_b)
                kept = [
                    t
                    for t in domains[a]
                    if self._has_neighbor_in_csr(t, dom_b, dom_b_set)
                ]
                if not kept:
                    return
                domains[a] = kept
        self._domains_ix = domains
        self._domain_sets_ix = {p: set(dom) for p, dom in domains.items()}

    def _build_domains_csr_numpy(self) -> None:
        """Vectorized domain seeding + arc consistency (same sets as scalar).

        Each pattern vertex's whole label class is filtered in one
        :func:`~repro.graph.kernels.seed_domain` call (degree + neighbor-label
        signature over gathered rows), and each arc-consistency direction is
        one :func:`~repro.graph.kernels.ac_filter` call.  Domains stay sorted
        ascending throughout, exactly like the scalar build, so every
        downstream consumer (search order, anchored iteration, digests) is
        unchanged.
        """
        g = self._csr
        assert g is not None
        offsets_np, nbrs_np, lids_np = g.csr_numpy()

        domains: Dict[Vertex, object] = {}
        for p, label, degree, needed in self._pattern_requirements():
            needed_ix = []
            feasible = True
            for lbl, cnt in needed.items():
                lid = g.label_id(lbl)
                if lid is None:
                    feasible = False
                    break
                needed_ix.append((lid, cnt))
            if not feasible:
                return
            members = g.label_members_np(label)
            if members is None or len(members) == 0:
                return
            domain = kernels.seed_domain(
                members, degree, needed_ix, offsets_np, nbrs_np, lids_np
            )
            if domain.size == 0:
                return
            domains[p] = domain

        for u, v in self._ac_edges():
            for a, b in ((u, v), (v, u)):
                kept = kernels.ac_filter(domains[a], domains[b], offsets_np, nbrs_np)
                if kept.size == 0:
                    return
                domains[a] = kept
        self._domains_np = domains
        self._domains_ix = {p: dom.tolist() for p, dom in domains.items()}
        self._domain_sets_ix = {p: set(dom) for p, dom in self._domains_ix.items()}

    def _domain_position(self, p_vertex: Vertex) -> Dict[int, int]:
        """dense index → position inside ``p_vertex``'s sorted domain (memoised)."""
        pos = self._domain_pos.get(p_vertex)
        if pos is None:
            assert self._domains_ix is not None
            pos = {t: i for i, t in enumerate(self._domains_ix[p_vertex])}
            self._domain_pos[p_vertex] = pos
        return pos

    def _candidate_adjacency(self, q: Vertex, p: Vertex) -> tuple:
        """Domain-filtered neighbor rows for the directed pattern edge (q, p).

        ``(flat, bounds, pos)``: the candidates for ``p`` given that ``q`` is
        mapped to domain member ``t`` are ``flat[bounds[k]:bounds[k+1]]`` with
        ``k = pos[t]`` — ``q``'s neighbor row intersected with ``p``'s domain,
        ascending.  Built once per matcher in one bulk
        :func:`~repro.graph.kernels.filter_rows` pass and converted to plain
        Python lists so the search inner loop stays allocation-free; row
        entries dropped here are the per-visit domain/label probes the scalar
        search no longer pays (counted once as ``domain_prunes``).
        """
        key = (q, p)
        cached = self._cand_adj.get(key)
        if cached is None:
            g = self._csr
            assert g is not None and self._domains_np is not None
            offsets_np, nbrs_np, _ = g.csr_numpy()
            flat, bounds, dropped = kernels.filter_rows(
                self._domains_np[q], self._domains_np[p], offsets_np, nbrs_np
            )
            self.stats.domain_prunes += dropped
            cached = (flat.tolist(), bounds.tolist(), self._domain_position(q))
            self._cand_adj[key] = cached
        return cached

    def _has_neighbor_in_csr(
        self, t: int, domain: List[int], domain_set: Set[int]
    ) -> bool:
        g = self._csr
        assert g is not None
        offsets = g.offsets
        nbrs = g.neighbor_indices
        lo, hi = offsets[t], offsets[t + 1]
        if hi - lo <= len(domain):
            return any(nbrs[j] in domain_set for j in range(lo, hi))
        for s in domain:
            j = bisect_left(nbrs, s, lo, hi)
            if j < hi and nbrs[j] == s:
                return True
        return False

    def _domain_contains(self, p_vertex: Vertex, t_vertex: Vertex) -> bool:
        if self._csr is not None:
            assert self._domain_sets_ix is not None
            try:
                index = self._csr.index_of(t_vertex)
            except Exception:
                return False
            return index in self._domain_sets_ix[p_vertex]
        assert self._domains is not None
        return t_vertex in self._domains[p_vertex]

    def _domain_ids(self, p_vertex: Vertex) -> List[Vertex]:
        """The candidate domain as vertex ids in canonical (repr-sorted) order."""
        if self._csr is not None:
            assert self._domains_ix is not None
            ids = self._csr.vertex_ids
            members = [ids[i] for i in self._domains_ix[p_vertex]]
        else:
            assert self._domains is not None
            members = list(self._domains[p_vertex])
        return sorted(members, key=repr)

    def domain_sizes(self) -> Dict[Vertex, int]:
        """Per-pattern-vertex candidate-domain sizes ({} when some domain is empty)."""
        if not self._query_feasible() or not self._ensure_domains():
            return {}
        if self._csr is not None:
            assert self._domains_ix is not None
            return {p: len(dom) for p, dom in self._domains_ix.items()}
        assert self._domains is not None
        return {p: len(dom) for p, dom in self._domains.items()}

    # ------------------------------------------------------------------ #
    # dict-backend search (the reference path, domain-filtered)
    # ------------------------------------------------------------------ #
    def _search_dict(
        self, order: Sequence[Vertex], anchor: Optional[Tuple[Vertex, Vertex]]
    ) -> Iterator[Mapping]:
        if anchor is not None:
            p_anchor, t_anchor = anchor
            initial: Mapping = {p_anchor: t_anchor}
            used = {t_anchor}
            start_index = 1
        else:
            initial = {}
            used = set()
            start_index = 0
        for mapping in self._search(order, start_index, initial, used):
            yield dict(mapping)

    def _candidates(
        self, p_vertex: Vertex, mapping: Mapping, used: Set[Vertex]
    ) -> Iterator[Vertex]:
        pattern, target = self.pattern, self.target
        stats = self.stats
        assert self._domains is not None
        domain = self._domains[p_vertex]
        label = pattern.label(p_vertex)
        mapped_neighbors = [u for u in pattern.neighbors(p_vertex) if u in mapping]
        if mapped_neighbors:
            # Candidates must be unused neighbours of every mapped pattern-neighbour.
            first = mapped_neighbors[0]
            candidate_pool = target.neighbors(mapping[first])
            for other in mapped_neighbors[1:]:
                candidate_pool = candidate_pool & target.neighbors(mapping[other])
            for t_vertex in candidate_pool:
                if t_vertex not in used and target.label(t_vertex) == label:
                    if t_vertex not in domain:
                        stats.domain_prunes += 1
                        continue
                    stats.candidate_tests += 1
                    yield t_vertex
        else:
            if mapping:
                stats.pool_fallbacks += 1
            # Iterate the label pool (canonical frozenset layout) rather than
            # the domain set, so the yielded sequence matches the reference
            # path exactly; the domain only filters.
            for t_vertex in target.vertices_with_label(label):
                if t_vertex not in used:
                    if t_vertex not in domain:
                        stats.domain_prunes += 1
                        continue
                    stats.candidate_tests += 1
                    yield t_vertex

    def _feasible(self, p_vertex: Vertex, t_vertex: Vertex, mapping: Mapping) -> bool:
        pattern, target = self.pattern, self.target
        if target.degree(t_vertex) < pattern.degree(p_vertex):
            return False
        t_neighbors = target.neighbors(t_vertex)
        for p_neighbor in pattern.neighbors(p_vertex):
            if p_neighbor in mapping and mapping[p_neighbor] not in t_neighbors:
                return False
        if self.induced:
            # No extra edges allowed between the new image and previously mapped images.
            p_neighbor_set = pattern.neighbors(p_vertex)
            for p_mapped, t_mapped in mapping.items():
                if t_mapped in t_neighbors and p_mapped not in p_neighbor_set:
                    return False
        return True

    def _search(
        self,
        order: Sequence[Vertex],
        index: int,
        mapping: Mapping,
        used: Set[Vertex],
    ) -> Iterator[Mapping]:
        if index == len(order):
            yield mapping
            return
        p_vertex = order[index]
        for t_vertex in self._candidates(p_vertex, mapping, used):
            if not self._feasible(p_vertex, t_vertex, mapping):
                continue
            mapping[p_vertex] = t_vertex
            used.add(t_vertex)
            yield from self._search(order, index + 1, mapping, used)
            del mapping[p_vertex]
            used.discard(t_vertex)

    # ------------------------------------------------------------------ #
    # CSR index-space search (the FrozenGraph fast path)
    # ------------------------------------------------------------------ #
    def _search_csr(
        self, order: Sequence[Vertex], anchor: Optional[Tuple[Vertex, Vertex]]
    ) -> Iterator[Mapping]:
        g = self._csr
        assert g is not None and self._domains_ix is not None
        pattern = self.pattern
        stats = self.stats
        offsets = g.offsets
        nbrs = g.neighbor_indices
        lids = g.label_ids
        ids = g.vertex_ids
        domain_sets = self._domain_sets_ix
        assert domain_sets is not None

        n_p = len(order)
        position = {p: i for i, p in enumerate(order)}
        # Per position: pattern neighbors mapped earlier, and (for induced
        # semantics) earlier non-neighbors whose images must stay non-adjacent.
        earlier_neighbors: List[List[Vertex]] = []
        earlier_others: List[List[Vertex]] = []
        for i, p in enumerate(order):
            nbrs_p = pattern.neighbors(p)
            earlier_neighbors.append([q for q in nbrs_p if position[q] < i])
            if self.induced:
                earlier_others.append([order[j] for j in range(i) if order[j] not in nbrs_p])
            else:
                earlier_others.append([])
        label_ix = {p: g.label_id(pattern.label(p)) for p in order}

        mapping_ix: Dict[Vertex, int] = {}
        used: Set[int] = set()
        start_index = 0
        if anchor is not None:
            p_anchor, t_anchor = anchor
            anchor_ix = g.index_of(t_anchor)
            mapping_ix[p_anchor] = anchor_ix
            used.add(anchor_ix)
            start_index = 1

        def row_contains(lo: int, hi: int, value: int) -> bool:
            j = bisect_left(nbrs, value, lo, hi)
            return j < hi and nbrs[j] == value

        def adjacent(a: int, b: int) -> bool:
            # Probe the shorter of the two sorted rows.
            alo, ahi = offsets[a], offsets[a + 1]
            blo, bhi = offsets[b], offsets[b + 1]
            if ahi - alo <= bhi - blo:
                return row_contains(alo, ahi, b)
            return row_contains(blo, bhi, a)

        def induced_ok(i: int, candidate: int) -> bool:
            row_lo, row_hi = offsets[candidate], offsets[candidate + 1]
            for q in earlier_others[i]:
                if row_contains(row_lo, row_hi, mapping_ix[q]):
                    return False
            return True

        def search(i: int) -> Iterator[Mapping]:
            if i == n_p:
                yield {p: ids[t] for p, t in mapping_ix.items()}
                return
            p = order[i]
            domain_set = domain_sets[p]
            p_lid = label_ix[p]
            mapped = earlier_neighbors[i]
            if mapped:
                # The candidate pool is the intersection of the mapped
                # neighbors' rows: iterate the shortest row ascending, bisect
                # the others.
                rows = [
                    (offsets[mapping_ix[q]], offsets[mapping_ix[q] + 1]) for q in mapped
                ]
                base = min(range(len(rows)), key=lambda k: rows[k][1] - rows[k][0])
                base_lo, base_hi = rows[base]
                others = [rows[k] for k in range(len(rows)) if k != base]
                for j in range(base_lo, base_hi):
                    candidate = nbrs[j]
                    if any(
                        not row_contains(olo, ohi, candidate) for olo, ohi in others
                    ):
                        continue
                    if candidate in used or lids[candidate] != p_lid:
                        continue
                    if candidate not in domain_set:
                        stats.domain_prunes += 1
                        continue
                    stats.candidate_tests += 1
                    if self.induced and not induced_ok(i, candidate):
                        continue
                    mapping_ix[p] = candidate
                    used.add(candidate)
                    yield from search(i + 1)
                    del mapping_ix[p]
                    used.discard(candidate)
            else:
                if mapping_ix:
                    stats.pool_fallbacks += 1
                for candidate in self._domains_ix[p]:
                    if candidate in used:
                        continue
                    stats.candidate_tests += 1
                    if self.induced and not induced_ok(i, candidate):
                        continue
                    mapping_ix[p] = candidate
                    used.add(candidate)
                    yield from search(i + 1)
                    del mapping_ix[p]
                    used.discard(candidate)

        yield from search(start_index)

    # ------------------------------------------------------------------ #
    # CSR kernel search (the vectorized default when numpy is available)
    # ------------------------------------------------------------------ #
    def _search_context(self, order: Sequence[Vertex]) -> tuple:
        """Per-matching-order search structures, built once per order.

        The scalar path rebuilds these on every ``_run_search`` call — cheap
        for one free search, but an anchored batch issues one search per
        anchor, so the kernel path memoises by order.  For every position
        with mapped pattern neighbors the context also pins the **base**
        neighbor (the one whose candidate-adjacency rows are walked; the
        others are only probed), chosen as the earlier-mapped neighbor whose
        filtered adjacency is smallest overall.
        """
        key = tuple(order)
        context = self._search_contexts.get(key)
        if context is not None:
            return context
        pattern = self.pattern
        position = {p: i for i, p in enumerate(order)}
        earlier_neighbors: List[List[Vertex]] = []
        earlier_others: List[List[Vertex]] = []
        base_adj: List[Optional[tuple]] = []
        other_adj: List[List[tuple]] = []
        for i, p in enumerate(order):
            nbrs_p = pattern.neighbors(p)
            mapped = [q for q in nbrs_p if position[q] < i]
            earlier_neighbors.append(mapped)
            if self.induced:
                earlier_others.append(
                    [order[j] for j in range(i) if order[j] not in nbrs_p]
                )
            else:
                earlier_others.append([])
            if mapped:
                adjacencies = [(self._candidate_adjacency(q, p), q) for q in mapped]
                # Walk the base with the fewest total filtered entries; the
                # rest are membership probes, so their size barely matters.
                adjacencies.sort(key=lambda a: a[0][1][-1])
                base_adj.append(adjacencies[0])
                other_adj.append(adjacencies[1:])
            else:
                base_adj.append(None)
                other_adj.append([])
        context = (earlier_neighbors, earlier_others, base_adj, other_adj)
        self._search_contexts[key] = context
        return context

    def _search_csr_kernels(
        self, order: Sequence[Vertex], anchor: Optional[Tuple[Vertex, Vertex]]
    ) -> Iterator[Mapping]:
        """Index-space search over precomputed candidate adjacencies.

        Same enumeration sequence as :meth:`_search_csr` (candidate pools are
        ascending row intersections either way); the per-node work drops to a
        bounds lookup plus a used-check because label and domain filtering
        already happened in bulk.  The deepest pattern vertex is emitted
        inline — one dict copy per embedding instead of one generator frame.
        """
        g = self._csr
        assert g is not None and self._domains_ix is not None
        stats = self.stats
        offsets = g.offsets
        nbrs = g.neighbor_indices
        ids = g.vertex_ids
        earlier_neighbors, earlier_others, base_adj, other_adj = (
            self._search_context(order)
        )

        n_p = len(order)
        mapping_ix: Dict[Vertex, int] = {}
        used: Set[int] = set()
        start_index = 0
        if anchor is not None:
            p_anchor, t_anchor = anchor
            anchor_ix = g.index_of(t_anchor)
            mapping_ix[p_anchor] = anchor_ix
            used.add(anchor_ix)
            start_index = 1

        def row_contains(lo: int, hi: int, value: int) -> bool:
            j = bisect_left(nbrs, value, lo, hi)
            return j < hi and nbrs[j] == value

        def induced_ok(i: int, candidate: int) -> bool:
            row_lo, row_hi = offsets[candidate], offsets[candidate + 1]
            for q in earlier_others[i]:
                if row_contains(row_lo, row_hi, mapping_ix[q]):
                    return False
            return True

        induced = self.induced

        def pool(i: int) -> Iterable[int]:
            """Ascending candidates for position ``i`` (pre-filtered rows)."""
            base = base_adj[i]
            if base is None:
                if mapping_ix:
                    stats.pool_fallbacks += 1
                return self._domains_ix[order[i]]
            (flat, bounds, pos), q0 = base
            k = pos[mapping_ix[q0]]
            candidates = flat[bounds[k]:bounds[k + 1]]
            for (o_flat, o_bounds, o_pos), q in other_adj[i]:
                if not candidates:
                    break
                ok = o_pos[mapping_ix[q]]
                o_lo, o_hi = o_bounds[ok], o_bounds[ok + 1]
                candidates = [
                    c
                    for c in candidates
                    if (j := bisect_left(o_flat, c, o_lo, o_hi)) < o_hi
                    and o_flat[j] == c
                ]
            return candidates

        def search(i: int) -> Iterator[Mapping]:
            if i == n_p:  # fully anchored single-vertex pattern
                yield {p: ids[t] for p, t in mapping_ix.items()}
                return
            p = order[i]
            if i == n_p - 1:
                # Leaf level: emit embeddings inline, one dict copy each.
                prefix = {pp: ids[tt] for pp, tt in mapping_ix.items()}
                for candidate in pool(i):
                    if candidate in used:
                        continue
                    stats.candidate_tests += 1
                    if induced and not induced_ok(i, candidate):
                        continue
                    mapping = dict(prefix)
                    mapping[p] = ids[candidate]
                    yield mapping
                return
            for candidate in pool(i):
                if candidate in used:
                    continue
                stats.candidate_tests += 1
                if induced and not induced_ok(i, candidate):
                    continue
                mapping_ix[p] = candidate
                used.add(candidate)
                yield from search(i + 1)
                del mapping_ix[p]
                used.discard(candidate)

        yield from search(start_index)


# ---------------------------------------------------------------------- #
# module-level conveniences
# ---------------------------------------------------------------------- #
def find_embeddings(
    pattern: LabeledGraph,
    target: GraphView,
    limit: Optional[int] = None,
    induced: bool = False,
) -> List[Mapping]:
    """All embeddings of ``pattern`` in ``target`` (possibly capped)."""
    return SubgraphMatcher(pattern, target, induced=induced).find_embeddings(limit=limit)


def find_anchored_embeddings(
    pattern: LabeledGraph,
    target: GraphView,
    p_anchor: Vertex,
    t_anchors: Optional[Iterable[Vertex]] = None,
    limit_per_anchor: Optional[int] = None,
    induced: bool = False,
) -> Dict[Vertex, List[Mapping]]:
    """Embeddings grouped by anchor image, one domain build for the batch.

    ``t_anchors`` defaults to every feasible target vertex of the anchor's
    label (its candidate domain) in canonical order.
    """
    matcher = SubgraphMatcher(pattern, target, induced=induced)
    grouped: Dict[Vertex, List[Mapping]] = {}
    for t_anchor, mapping in matcher.iter_anchored(
        p_anchor, t_anchors=t_anchors, limit_per_anchor=limit_per_anchor
    ):
        grouped.setdefault(t_anchor, []).append(mapping)
    return grouped


def subgraph_exists(pattern: LabeledGraph, target: GraphView) -> bool:
    """Whether ``pattern`` has at least one embedding in ``target``."""
    return SubgraphMatcher(pattern, target).exists()


def are_isomorphic(first: GraphView, second: GraphView) -> bool:
    """Exact labeled graph isomorphism via bidirectional size checks + matching."""
    if first.num_vertices != second.num_vertices or first.num_edges != second.num_edges:
        return False
    if first.label_counts() != second.label_counts():
        return False
    if first.degree_sequence() != second.degree_sequence():
        return False
    return SubgraphMatcher(first, second, induced=True).exists()


def count_automorphisms(graph: LabeledGraph, limit: Optional[int] = None) -> int:
    """Number of label-preserving automorphisms of ``graph``."""
    return SubgraphMatcher(graph, graph, induced=True).count(limit=limit)


def embedding_image(mapping: Mapping) -> FrozenSet[Vertex]:
    """The set of data-graph vertices an embedding covers."""
    return frozenset(mapping.values())


def embedding_edge_image(
    pattern: LabeledGraph, mapping: Mapping
) -> FrozenSet[Tuple[Vertex, Vertex]]:
    """The set of data-graph edges an embedding covers (normalised by repr order)."""
    return frozenset(
        normalise_edge(mapping[u], mapping[v]) for u, v in pattern.edges()
    )


def matcher_digest(embeddings: Iterable[Mapping]) -> str:
    """Canonical, order-insensitive fingerprint of an embedding collection.

    Each mapping is serialised with its pairs in repr-sorted pattern-vertex
    order and the rows are sorted before hashing, so two enumerations of the
    same embedding *set* — in particular the dict-backend and the CSR
    index-space search paths — always digest identically.  This is the parity
    gate mirroring the overlap engine's ``conflict_digest``.
    """
    rows = sorted(
        "|".join(
            f"{p!r}>{g!r}"
            for p, g in sorted(mapping.items(), key=lambda kv: repr(kv[0]))
        )
        for mapping in embeddings
    )
    return hashlib.sha256(";".join(rows).encode()).hexdigest()[:16]
