"""Immutable CSR snapshot of a labeled graph — the mining-time backend.

A :class:`FrozenGraph` is built once from a mutable
:class:`~repro.graph.labeled_graph.LabeledGraph` (or any
:class:`~repro.graph.view.GraphView`) and never changes afterwards:

* vertex identifiers are mapped onto dense indices ``0..n-1`` (insertion
  order is preserved so traversal order matches the builder);
* labels are interned into an integer table, one small int per vertex;
* adjacency is compressed-sparse-row: one ``array`` of offsets and one flat
  ``array`` of neighbor indices, each row sorted ascending so edge membership
  is O(log d) by bisection;
* the label → vertices index plus label/degree histograms are precomputed.

The public surface speaks *original vertex identifiers* and matches
:class:`LabeledGraph`'s read API exactly (it satisfies
:class:`~repro.graph.view.GraphView`), so every miner runs on either backend
unchanged.  The index-space accessors (:meth:`index_of`, :attr:`offsets`,
:attr:`neighbor_indices`, :meth:`bfs_levels`) are the fast path used by
:mod:`repro.graph.algorithms` to keep BFS-shaped kernels in flat int arrays.

Use :func:`freeze` / :func:`thaw` to move between the two representations:
the data graph is frozen once after construction and shared by all stages,
while pattern graphs stay small and mutable.

Memory note: ``neighbors()`` / ``label()`` / ``vertices_with_label()`` memoise
their id-space results lazily, so a workload that probes the whole graph
grows the snapshot back toward dict-backend memory — a deliberate
throughput-for-memory trade.  Kernels that must stay compact should use the
index-space accessors (:meth:`neighbor_row`, :meth:`bfs_levels`), which never
populate the caches.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .labeled_graph import Edge, GraphError, Label, LabeledGraph, Vertex
from .view import GraphView

__all__ = ["FrozenGraph", "freeze", "thaw", "coerce_backend", "GRAPH_BACKENDS"]

#: Backend names accepted by :func:`coerce_backend` and the CLI ``--backend``.
GRAPH_BACKENDS = ("dict", "csr")


def _index_typecode(num_vertices: int) -> str:
    """Smallest array typecode that can hold a vertex index."""
    return "i" if num_vertices <= 0x7FFFFFFF else "q"


class FrozenGraph:
    """An immutable, array-compacted vertex-labeled undirected graph."""

    __slots__ = (
        "_ids",
        "_index",
        "_label_table",
        "_label_lookup",
        "_label_ids",
        "_offsets",
        "_neighbors",
        "_num_edges",
        "_label_members",
        "_label_counts",
        "_label_sets",
        "_neighbor_sets",
        "_label_map",
        "_np_views",
        "_np_members",
    )

    def __init__(self, source: GraphView) -> None:
        ids: Tuple[Vertex, ...] = tuple(source.vertices())
        index: Dict[Vertex, int] = {v: i for i, v in enumerate(ids)}
        if len(index) != len(ids):
            raise GraphError("duplicate vertex identifiers in source graph")
        n = len(ids)

        # Intern labels: first-seen order keeps the table deterministic.
        label_table: List[Label] = []
        label_lookup: Dict[Label, int] = {}
        label_ids = array("i", [0]) * n
        label_members: Dict[int, array] = {}
        typecode = _index_typecode(n)
        for i, v in enumerate(ids):
            label = source.label(v)
            lid = label_lookup.get(label)
            if lid is None:
                lid = len(label_table)
                label_lookup[label] = lid
                label_table.append(label)
                label_members[lid] = array(typecode)
            label_ids[i] = lid
            label_members[lid].append(i)

        # CSR adjacency, rows sorted by neighbor index for O(log d) membership.
        rows: List[List[int]] = [[] for _ in range(n)]
        num_edges = 0
        for u, v in source.edges():
            ui, vi = index[u], index[v]
            rows[ui].append(vi)
            rows[vi].append(ui)
            num_edges += 1
        offsets = array("q", [0]) * (n + 1)
        neighbors = array(typecode)
        position = 0
        for i, row in enumerate(rows):
            offsets[i] = position
            row.sort()
            neighbors.extend(row)
            position += len(row)
            rows[i] = None  # type: ignore[call-overload]  # release eagerly
        offsets[n] = position

        self._ids = ids
        self._index = index
        self._label_table: Tuple[Label, ...] = tuple(label_table)
        self._label_lookup = label_lookup
        self._label_ids = label_ids
        self._offsets = offsets
        self._neighbors = neighbors
        self._num_edges = num_edges
        self._label_members = label_members
        self._label_counts = Counter(
            {label_table[lid]: len(members) for lid, members in label_members.items()}
        )
        # Lazily filled caches (the only mutable state; pure memoisation).
        self._label_sets: Dict[int, FrozenSet[Vertex]] = {}
        self._neighbor_sets: Dict[int, FrozenSet[Vertex]] = {}
        self._label_map: Optional[Dict[Vertex, Label]] = None
        self._np_views = None
        self._np_members: Dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # immutability
    # ------------------------------------------------------------------ #
    def _frozen_error(self, operation: str) -> GraphError:
        return GraphError(
            f"FrozenGraph is immutable: {operation} is not supported — "
            "thaw() to a LabeledGraph, mutate, then freeze() again"
        )

    def add_vertex(self, vertex: Vertex, label: Label) -> None:
        raise self._frozen_error("add_vertex")

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        raise self._frozen_error("add_edge")

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        raise self._frozen_error("remove_edge")

    def remove_vertex(self, vertex: Vertex) -> None:
        raise self._frozen_error("remove_vertex")

    @classmethod
    def from_csr_arrays(
        cls,
        ids: Tuple[Vertex, ...],
        label_table: Tuple[Label, ...],
        label_ids,
        offsets,
        neighbors,
    ) -> "FrozenGraph":
        """Rebuild a snapshot from its constituent arrays without re-deriving CSR.

        The array arguments may be ``array.array`` instances, ``numpy``
        ndarrays, or any typed buffer with the same read surface
        (``memoryview.cast`` views over a ``multiprocessing.shared_memory``
        segment, which is how worker processes re-attach a shared data graph
        without pickling it — see :mod:`repro.parallel.shared_graph`; numpy
        views over the same buffers let workers run the vectorized kernels
        without copying).  Only the derived index structures (vertex index,
        label lookup, label membership rows) are rebuilt; the heavy CSR
        payload is used as-is, so a shared-memory attach is O(|V|) and copies
        none of the adjacency.
        """
        self = cls.__new__(cls)
        n = len(ids)
        if len(offsets) != n + 1:
            raise GraphError(
                f"offsets length {len(offsets)} does not match {n} vertices"
            )
        index: Dict[Vertex, int] = {v: i for i, v in enumerate(ids)}
        if len(index) != n:
            raise GraphError("duplicate vertex identifiers in source arrays")
        typecode = _index_typecode(n)
        label_members: Dict[int, array] = {lid: array(typecode) for lid in range(len(label_table))}
        # ndarray element access returns numpy scalars; one bulk tolist()
        # keeps the membership build (and later dict lookups) on plain ints.
        lid_sequence = label_ids.tolist() if hasattr(label_ids, "tolist") else label_ids
        for i in range(n):
            label_members[lid_sequence[i]].append(i)
        self._ids = tuple(ids)
        self._index = index
        self._label_table = tuple(label_table)
        self._label_lookup = {label: lid for lid, label in enumerate(self._label_table)}
        self._label_ids = label_ids
        self._offsets = offsets
        self._neighbors = neighbors
        self._num_edges = len(neighbors) // 2
        self._label_members = label_members
        self._label_counts = Counter(
            {self._label_table[lid]: len(members) for lid, members in label_members.items()}
        )
        self._label_sets = {}
        self._neighbor_sets = {}
        self._label_map = None
        self._np_views = None
        self._np_members = {}
        return self

    # ------------------------------------------------------------------ #
    # index-space accessors (the fast path)
    # ------------------------------------------------------------------ #
    @property
    def vertex_ids(self) -> Tuple[Vertex, ...]:
        """Original vertex identifiers, position = dense index."""
        return self._ids

    @property
    def label_table(self) -> Tuple[Label, ...]:
        """Interned label values, position = label id."""
        return self._label_table

    @property
    def label_ids(self):
        """Per-vertex interned label ids, position = dense vertex index."""
        return self._label_ids

    @property
    def offsets(self) -> array:
        """CSR row offsets (length ``n + 1``)."""
        return self._offsets

    @property
    def neighbor_indices(self) -> array:
        """Flat neighbor-index array; row ``i`` is ``[offsets[i], offsets[i+1])``."""
        return self._neighbors

    def label_id(self, label: Label) -> Optional[int]:
        """Interned id of ``label``, or ``None`` if no vertex carries it.

        The index-space companion of :meth:`vertices_with_label`: kernels that
        stay in CSR index space (the domain-based subgraph matcher) compare
        per-vertex :attr:`label_ids` entries against this id instead of
        materialising id-space label sets.
        """
        try:
            return self._label_lookup.get(label)
        except TypeError:
            return None

    def label_member_indices(self, label: Label):
        """Dense indices of the vertices labeled ``label``, ascending.

        Returns the internal membership row (an ``array`` — treat it as
        read-only); an empty tuple when the label is absent.
        """
        lid = self.label_id(label)
        if lid is None:
            return ()
        return self._label_members[lid]

    def csr_numpy(self):
        """``(offsets, neighbor_indices, label_ids)`` as zero-copy numpy views.

        The views are created once (``np.frombuffer`` over the existing
        buffers — ``array.array``, shared-memory ``memoryview`` and ndarray
        inputs all map without copying) and memoised; treat them as
        read-only.  This is the array surface the vectorized kernels
        (:mod:`repro.graph.kernels`) operate on.  Raises ``RuntimeError``
        when numpy is unavailable — callers gate on
        :func:`repro.graph.kernels.numpy_available`.
        """
        if self._np_views is None:
            from .kernels import as_index_array

            self._np_views = (
                as_index_array(self._offsets),
                as_index_array(self._neighbors),
                as_index_array(self._label_ids),
            )
        return self._np_views

    def label_members_np(self, label: Label):
        """Ascending member indices of ``label`` as a zero-copy numpy view,
        or ``None`` when no vertex carries the label."""
        lid = self.label_id(label)
        if lid is None:
            return None
        view = self._np_members.get(lid)
        if view is None:
            from .kernels import as_index_array

            view = as_index_array(self._label_members[lid])
            self._np_members[lid] = view
        return view

    def index_of(self, vertex: Vertex) -> int:
        """Dense index of ``vertex``; raises :class:`GraphError` if absent."""
        try:
            return self._index[vertex]
        except (KeyError, TypeError):
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def vertex_at(self, index: int) -> Vertex:
        return self._ids[index]

    def neighbor_row(self, index: int) -> array:
        """The sorted neighbor indices of the vertex at ``index``."""
        return self._neighbors[self._offsets[index]:self._offsets[index + 1]]

    def bfs_levels(self, source_index: int, radius: int = -1) -> List[int]:
        """BFS distances in index space: ``result[i]`` is the hop distance of
        vertex ``i`` from ``source_index``, or ``-1`` if unreached.

        ``radius >= 0`` stops the expansion after that many levels.  This is
        the kernel behind every BFS-shaped algorithm fast path; it never
        leaves flat int arrays/lists.
        """
        offsets = self._offsets
        nbrs = self._neighbors
        dist = [-1] * len(self._ids)
        dist[source_index] = 0
        frontier = [source_index]
        level = 0
        while frontier and level != radius:
            level += 1
            nxt: List[int] = []
            append = nxt.append
            for u in frontier:
                for v in nbrs[offsets[u]:offsets[u + 1]]:
                    if dist[v] < 0:
                        dist[v] = level
                        append(v)
            frontier = nxt
        return dist

    def eccentricity_at(self, source_index: int) -> Tuple[int, int]:
        """(number of reached vertices, max BFS distance) from an index."""
        offsets = self._offsets
        nbrs = self._neighbors
        seen = bytearray(len(self._ids))
        seen[source_index] = 1
        reached = 1
        frontier = [source_index]
        level = 0
        while frontier:
            nxt: List[int] = []
            append = nxt.append
            for u in frontier:
                for v in nbrs[offsets[u]:offsets[u + 1]]:
                    if not seen[v]:
                        seen[v] = 1
                        reached += 1
                        append(v)
            if not nxt:
                break
            level += 1
            frontier = nxt
        return reached, level

    # ------------------------------------------------------------------ #
    # GraphView: size
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: Vertex) -> bool:
        try:
            return vertex in self._index
        except TypeError:
            return False

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._ids)

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # GraphView: vertices, edges, labels
    # ------------------------------------------------------------------ #
    def vertices(self) -> Iterator[Vertex]:
        return iter(self._ids)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once (rows are sorted, so the
        lower-index endpoint emits it)."""
        ids = self._ids
        offsets = self._offsets
        nbrs = self._neighbors
        for i in range(len(ids)):
            u = ids[i]
            for j in range(offsets[i], offsets[i + 1]):
                v = nbrs[j]
                if v > i:
                    yield (u, ids[v])

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        ui = self._index.get(u)
        vi = self._index.get(v)
        if ui is None or vi is None:
            return False
        lo, hi = self._offsets[ui], self._offsets[ui + 1]
        if hi - lo > self._offsets[vi + 1] - self._offsets[vi]:
            ui, vi = vi, ui
            lo, hi = self._offsets[ui], self._offsets[ui + 1]
        position = bisect_left(self._neighbors, vi, lo, hi)
        return position < hi and self._neighbors[position] == vi

    def label(self, vertex: Vertex) -> Label:
        # label() is the single hottest data-graph call in the miners (one
        # probe per touched neighbor), so it gets a lazily built id → label
        # dict: one hash lookup per call, same as the mutable backend.
        mapping = self._label_map
        if mapping is None:
            mapping = self.labels()
            self._label_map = mapping
        try:
            return mapping[vertex]
        except (KeyError, TypeError):
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def labels(self) -> Dict[Vertex, Label]:
        table = self._label_table
        lids = self._label_ids
        return {v: table[lids[i]] for i, v in enumerate(self._ids)}

    def label_set(self) -> Set[Label]:
        return set(self._label_table)

    def label_counts(self) -> Counter:
        return Counter(self._label_counts)

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        try:
            lid = self._label_lookup[label]
        except (KeyError, TypeError):
            return frozenset()
        cached = self._label_sets.get(lid)
        if cached is None:
            ids = self._ids
            # Canonical (repr-sorted) insertion order: iteration then matches
            # the same set built by LabeledGraph.
            cached = frozenset(
                sorted((ids[i] for i in self._label_members[lid]), key=repr)
            )
            self._label_sets[lid] = cached
        return cached

    # ------------------------------------------------------------------ #
    # GraphView: local structure
    # ------------------------------------------------------------------ #
    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        index = self.index_of(vertex)
        cached = self._neighbor_sets.get(index)
        if cached is None:
            ids = self._ids
            # Canonical (repr-sorted) insertion order — a frozenset built from
            # the same elements in the same order has the same layout, hence
            # the same iteration order as LabeledGraph.neighbors.  This is
            # what makes mining results backend-identical.
            cached = frozenset(
                sorted(
                    (
                        ids[j]
                        for j in self._neighbors[
                            self._offsets[index]:self._offsets[index + 1]
                        ]
                    ),
                    key=repr,
                )
            )
            self._neighbor_sets[index] = cached
        return cached

    def degree(self, vertex: Vertex) -> int:
        index = self.index_of(vertex)
        return self._offsets[index + 1] - self._offsets[index]

    def average_degree(self) -> float:
        if not self._ids:
            return 0.0
        return 2.0 * self._num_edges / len(self._ids)

    def max_degree(self) -> int:
        offsets = self._offsets
        if len(self._ids) == 0:
            return 0
        return max(offsets[i + 1] - offsets[i] for i in range(len(self._ids)))

    def degree_sequence(self) -> List[int]:
        offsets = self._offsets
        return sorted(
            (offsets[i + 1] - offsets[i] for i in range(len(self._ids))), reverse=True
        )

    def degree_histogram(self) -> Dict[int, int]:
        """degree → number of vertices with that degree (O(|V|) offsets walk)."""
        offsets = self._offsets
        hist: Dict[int, int] = {}
        for i in range(len(self._ids)):
            d = offsets[i + 1] - offsets[i]
            hist[d] = hist.get(d, 0) + 1
        return hist

    def density(self) -> float:
        n = len(self._ids)
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    # ------------------------------------------------------------------ #
    # GraphView: traversal / derived graphs
    # ------------------------------------------------------------------ #
    def bfs_within(self, source: Vertex, radius: int) -> Dict[Vertex, int]:
        """Vertices within ``radius`` hops of ``source`` → their distance."""
        if radius < 0:
            raise GraphError("radius must be non-negative")
        dist = self.bfs_levels(self.index_of(source), radius=radius)
        ids = self._ids
        return {ids[i]: d for i, d in enumerate(dist) if d >= 0}

    def neighborhood_subgraph(self, source: Vertex, radius: int) -> LabeledGraph:
        return self.subgraph(self.bfs_within(source, radius))

    def subgraph(self, vertices: Iterable[Vertex]) -> LabeledGraph:
        """The induced subgraph on ``vertices`` as a fresh mutable graph."""
        selected = set(vertices)
        unknown = selected - self._index.keys()
        if unknown:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, unknown))}")
        table = self._label_table
        lids = self._label_ids
        ids = self._ids
        offsets = self._offsets
        nbrs = self._neighbors
        sub = LabeledGraph()
        indices = sorted(self._index[v] for v in selected)
        for i in indices:
            sub.add_vertex(ids[i], table[lids[i]])
        chosen = set(indices)
        for i in indices:
            u = ids[i]
            for j in range(offsets[i], offsets[i + 1]):
                v = nbrs[j]
                if v > i and v in chosen:
                    sub.add_edge(u, ids[v])
        return sub

    def edge_subgraph(self, edge_list: Iterable[Edge]) -> LabeledGraph:
        """The subgraph containing exactly ``edge_list`` and their endpoints."""
        sub = LabeledGraph()
        for u, v in edge_list:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
            sub.add_vertex(u, self.label(u))
            sub.add_vertex(v, self.label(v))
            sub.add_edge(u, v)
        return sub

    def relabeled(self, mapping: Optional[Dict[Vertex, Vertex]] = None) -> LabeledGraph:
        """A mutable copy with vertices renamed to 0..n-1 (or by ``mapping``)."""
        return self.thaw().relabeled(mapping)

    def copy(self) -> "FrozenGraph":
        """Immutable snapshots are safe to share: copy returns self."""
        return self

    def thaw(self) -> LabeledGraph:
        """An equivalent mutable :class:`LabeledGraph` (inverse of freezing)."""
        out = LabeledGraph()
        table = self._label_table
        lids = self._label_ids
        for i, v in enumerate(self._ids):
            out.add_vertex(v, table[lids[i]])
        for u, v in self.edges():
            out.add_edge(u, v)
        return out

    def freeze(self) -> "FrozenGraph":
        """Already frozen: returns self (mirrors ``LabeledGraph.freeze``)."""
        return self

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={len(self._label_table)})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality on the identified graph, across backends.

        Compares transient label dicts and normalised edge sets rather than
        per-vertex ``neighbors()`` frozensets, so a one-off comparison does
        not permanently populate either graph's memo caches.
        """
        if isinstance(other, (FrozenGraph, LabeledGraph)):
            if (
                self.num_vertices != other.num_vertices
                or self.num_edges != other.num_edges
            ):
                return False
            if self.labels() != other.labels():
                return False
            return _normalised_edge_set(self) == _normalised_edge_set(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - parity with LabeledGraph
        raise TypeError("graphs are compared structurally and are unhashable")


def _normalised_edge_set(graph) -> Set[Edge]:
    """Edges with repr-ordered endpoints, for order-independent comparison."""
    return {
        (u, v) if repr(u) <= repr(v) else (v, u) for u, v in graph.edges()
    }


# ---------------------------------------------------------------------- #
# freeze / thaw / backend coercion
# ---------------------------------------------------------------------- #
def freeze(graph) -> FrozenGraph:
    """Snapshot any graph view into a :class:`FrozenGraph`.

    Freezing an already-frozen graph is the identity (snapshots are shared,
    never copied).
    """
    if isinstance(graph, FrozenGraph):
        return graph
    return FrozenGraph(graph)


def thaw(graph) -> LabeledGraph:
    """The mutable counterpart of :func:`freeze`.

    A :class:`FrozenGraph` is expanded back into a fresh
    :class:`LabeledGraph`; a graph that is already mutable is returned
    unchanged.
    """
    if isinstance(graph, FrozenGraph):
        return graph.thaw()
    if isinstance(graph, LabeledGraph):
        return graph
    raise GraphError(f"cannot thaw {type(graph).__name__}")


def coerce_backend(graph, backend: str):
    """Return ``graph`` in the requested backend (``"dict"`` or ``"csr"``)."""
    if backend == "csr":
        return freeze(graph)
    if backend == "dict":
        return thaw(graph)
    raise GraphError(f"unknown graph backend {backend!r}; expected one of {GRAPH_BACKENDS}")
