"""Serialisation of labeled graphs.

Two plain-text formats are provided:

* an **edge-list format** (``.lg``) compatible in spirit with the format used
  by gSpan/MoSS distributions: ``v <id> <label>`` lines followed by
  ``e <src> <dst>`` lines, one graph per ``t # <id>`` block;
* a **JSON format** mainly for round-tripping experiment artifacts.

Both formats preserve vertex identities and labels exactly.  Writers accept
any :class:`~repro.graph.view.GraphView` (mutable or frozen); readers build
mutable graphs by default and return immutable CSR snapshots when called with
``frozen=True``, so a data graph can go straight from disk to the miners
without an intermediate mutable copy lingering.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from .frozen import FrozenGraph, freeze
from .labeled_graph import GraphError, LabeledGraph
from .view import GraphView

PathLike = Union[str, Path]
GraphLike = Union[LabeledGraph, FrozenGraph]


# ---------------------------------------------------------------------- #
# edge-list (.lg) format
# ---------------------------------------------------------------------- #
def graphs_to_lg(graphs: Sequence[GraphView]) -> str:
    """Serialise a sequence of graphs in the gSpan-style text format."""
    lines: List[str] = []
    for index, graph in enumerate(graphs):
        lines.append(f"t # {index}")
        id_map = {v: i for i, v in enumerate(sorted(graph.vertices(), key=repr))}
        for vertex, local in sorted(id_map.items(), key=lambda kv: kv[1]):
            lines.append(f"v {local} {graph.label(vertex)}")
        for u, v in sorted(graph.edges(), key=lambda e: (id_map[e[0]], id_map[e[1]])):
            a, b = id_map[u], id_map[v]
            if a > b:
                a, b = b, a
            lines.append(f"e {a} {b}")
    return "\n".join(lines) + "\n"


def graphs_from_lg(text: str, frozen: bool = False) -> List[GraphLike]:
    """Parse the gSpan-style text format produced by :func:`graphs_to_lg`.

    ``frozen=True`` returns immutable CSR snapshots instead of mutable graphs.
    """
    graphs: List[LabeledGraph] = []
    current: LabeledGraph = LabeledGraph()
    started = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if started:
                graphs.append(current)
            current = LabeledGraph()
            started = True
        elif kind == "v":
            if len(parts) < 3:
                raise GraphError(f"line {line_number}: malformed vertex line {raw!r}")
            current.add_vertex(int(parts[1]), " ".join(parts[2:]))
        elif kind == "e":
            if len(parts) < 3:
                raise GraphError(f"line {line_number}: malformed edge line {raw!r}")
            current.add_edge(int(parts[1]), int(parts[2]))
        else:
            raise GraphError(f"line {line_number}: unknown record type {kind!r}")
    if started:
        graphs.append(current)
    if frozen:
        return [freeze(g) for g in graphs]
    return graphs


def write_lg(graphs: Sequence[GraphView], path: PathLike) -> None:
    Path(path).write_text(graphs_to_lg(graphs), encoding="utf-8")


def read_lg(path: PathLike, frozen: bool = False) -> List[GraphLike]:
    return graphs_from_lg(Path(path).read_text(encoding="utf-8"), frozen=frozen)


# ---------------------------------------------------------------------- #
# JSON format
# ---------------------------------------------------------------------- #
def graph_to_dict(graph: GraphView) -> Dict:
    """A JSON-serialisable dict for one graph (vertex ids coerced to str keys).

    The emission is **canonical**: vertices are repr-sorted and edges are
    normalised (repr-lower endpoint first) and repr-sorted, so two
    structurally identical graphs — regardless of backend or insertion order —
    serialise to the same bytes.  The catalog layer
    (:mod:`repro.catalog.formats`) relies on this to derive stable
    content-addressed digests.
    """
    vertices = sorted(graph.vertices(), key=repr)
    edges = []
    for u, v in graph.edges():
        if repr(v) < repr(u):
            u, v = v, u
        edges.append((u, v))
    edges.sort(key=lambda e: (repr(e[0]), repr(e[1])))
    return {
        "vertices": {str(v): graph.label(v) for v in vertices},
        "edges": [[str(u), str(v)] for u, v in edges],
    }


def coerce_vertex_id(text: str):
    """Decode a stringified vertex id: ``int`` when integer-like, else the string.

    The shared inverse of the ``str(vertex)`` coding used by the JSON graph
    format and the catalog payloads (:mod:`repro.catalog.formats`).
    """
    if text.lstrip("-").isdigit():
        try:
            return int(text)
        except ValueError:  # e.g. "--5": digit-check passes, int() does not
            return text
    return text


def graph_from_dict(data: Dict, frozen: bool = False) -> GraphLike:
    """Inverse of :func:`graph_to_dict`.  Vertex ids become strings or ints."""
    graph = LabeledGraph()
    for key, label in data["vertices"].items():
        graph.add_vertex(coerce_vertex_id(key), label)
    for u, v in data["edges"]:
        graph.add_edge(coerce_vertex_id(u), coerce_vertex_id(v))
    return freeze(graph) if frozen else graph


def write_json(graphs: Sequence[GraphView], path: PathLike) -> None:
    """Write graphs as canonical JSON (sorted keys, canonical vertex/edge order)."""
    payload = [graph_to_dict(g) for g in graphs]
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def read_json(path: PathLike, frozen: bool = False) -> List[GraphLike]:
    """Inverse of :func:`write_json`; also accepts a bare single-graph object
    (what :func:`repro.api.save_graph` writes)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict):
        payload = [payload]
    return [graph_from_dict(item, frozen=frozen) for item in payload]
