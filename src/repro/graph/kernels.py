"""Vectorized numpy kernels over the CSR int-index world.

The candidate-domain matcher (:mod:`repro.graph.isomorphism`) and the overlap
engine (:mod:`repro.patterns.overlap`) already do all of their hot-loop work
on dense integer indices — sorted CSR neighbor rows, sorted candidate
domains, integer embedding ids.  What they paid for until this module existed
was the *per-element* cost of driving those loops from Python: one
``Counter`` per scanned vertex at domain-seed time, one ``bisect`` call per
arc-consistency probe, one nested loop iteration per posting pair.  The
asymptotics were right (BENCH_matcher.json shows ~99% of candidate tests
pruned) but the constant factor lost free-search wall-clock to the
pre-domain reference engine.

This module batches exactly those loops into numpy:

* :func:`seed_domain` — label/degree/neighbor-signature filtering over a
  whole label-member row at once (replaces the per-vertex ``Counter`` scan in
  ``SubgraphMatcher._build_domains_csr``);
* :func:`ac_filter` — one arc-consistency sweep direction as a gather +
  ``searchsorted`` membership + segmented any-reduction (replaces
  ``_has_neighbor_in_csr``'s per-element bisects);
* :func:`in_sorted` / :func:`intersect_sorted` — galloping ``searchsorted``
  membership and intersection of sorted index arrays (candidate-pool
  intersections mid-search);
* :func:`filter_rows` — bulk "neighbors ∩ sorted domain" over many CSR rows
  in one pass, the precompute behind the matcher's per-pattern-edge candidate
  adjacency;
* :func:`merge_postings` — bulk conflict-pair emission from posting lists
  (replaces the nested posting loops in ``EmbeddingIndex.conflict_graph``).

Every kernel is **pure**: arrays in, arrays out, no graph objects.  Callers
keep their scalar implementations and dispatch on :func:`numpy_available`, so
numpy stays an optional-but-default dependency — the package imports and
mines without it, just slower.  Parity between the two paths is pinned by the
digest machinery (``matcher_digest`` / ``conflict_digest``) in
``tests/test_kernels.py`` and the perf-smoke kernels suite.

Zero-copy contract: :func:`as_index_array` wraps ``array.array``, typed
``memoryview`` (the shared-memory attach path) and ``np.ndarray`` buffers
without copying, so a worker process running these kernels over an attached
:class:`~repro.graph.frozen.FrozenGraph` still shares the creator's pages.
"""

from __future__ import annotations

from contextlib import contextmanager

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the scalar-fallback environment
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "numpy_available",
    "scalar_fallback",
    "as_index_array",
    "seed_domain",
    "ac_filter",
    "in_sorted",
    "intersect_sorted",
    "filter_rows",
    "merge_postings",
]

#: Whether numpy could be imported at all (the hard capability bound).
HAVE_NUMPY = _np is not None

#: Test/debug override: when True the kernels report unavailable even though
#: numpy is importable, forcing every caller onto its scalar path.
_FORCED_SCALAR = False


def numpy_available() -> bool:
    """Whether callers should dispatch onto the numpy kernels."""
    return HAVE_NUMPY and not _FORCED_SCALAR


@contextmanager
def scalar_fallback():
    """Force :func:`numpy_available` to ``False`` inside the block.

    The parity tests run every engine once per path and compare digests;
    production code never needs this.  Callers that capture the dispatch
    decision at construction time (the matcher does) must be *constructed*
    inside the block.
    """
    global _FORCED_SCALAR
    previous = _FORCED_SCALAR
    _FORCED_SCALAR = True
    try:
        yield
    finally:
        _FORCED_SCALAR = previous


# --------------------------------------------------------------------------- #
# zero-copy buffer adaptation
# --------------------------------------------------------------------------- #
def as_index_array(buffer):
    """A 1-D integer ndarray view of ``buffer`` without copying.

    Accepts ``array.array``, typed ``memoryview`` (what shared-memory workers
    attach), and ``np.ndarray``.  All three expose the buffer protocol, so
    ``np.frombuffer`` maps the existing bytes; the caller must treat the
    result as read-only (the CSR payload is immutable by contract).
    """
    if _np is None:
        raise RuntimeError("numpy is not available")
    if isinstance(buffer, _np.ndarray):
        return buffer
    typecode = getattr(buffer, "typecode", None) or buffer.format
    return _np.frombuffer(buffer, dtype=_np.dtype(typecode))


def _gather_rows(members, offsets, neighbors):
    """Concatenated CSR rows of ``members``: (flat values, per-member counts).

    ``flat`` holds ``neighbors[offsets[m]:offsets[m+1]]`` for each member in
    order; ``counts[i]`` is the degree of ``members[i]``.  The classic
    repeat/cumsum gather — one vectorized pass, no per-row Python loop.
    """
    starts = offsets[members]
    counts = (offsets[members + 1] - starts).astype(_np.int64)
    total = int(counts.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.int64), counts
    # Flat position k belongs to member i; its in-row offset is k minus the
    # exclusive prefix sum of counts, shifted to that member's row start.
    ends = _np.cumsum(counts)
    row_origin = _np.repeat(starts.astype(_np.int64) - (ends - counts), counts)
    gather = row_origin + _np.arange(total, dtype=_np.int64)
    return _np.asarray(neighbors)[gather].astype(_np.int64, copy=False), counts


def _segment_counts(mask, counts):
    """Per-segment popcount of ``mask`` under segment lengths ``counts``."""
    sums = _np.zeros(len(counts), dtype=_np.int64)
    nonempty = counts > 0
    if mask.size:
        boundaries = _np.cumsum(counts) - counts  # inclusive segment starts
        sums[nonempty] = _np.add.reduceat(
            mask.astype(_np.int64), boundaries[nonempty]
        )
    return sums


# --------------------------------------------------------------------------- #
# matcher kernels
# --------------------------------------------------------------------------- #
def seed_domain(members, min_degree, needed, offsets, neighbors, label_ids):
    """Domain seeding for one pattern vertex, vectorized over a label class.

    ``members`` are the (ascending) dense indices of the target vertices with
    the pattern vertex's label; survivors must have degree ≥ ``min_degree``
    and, for every ``(label_id, count)`` in ``needed`` (the pattern vertex's
    neighbor-label multiset), at least ``count`` neighbors carrying that
    label.  Returns the surviving members, still ascending — the exact set
    the scalar per-vertex Counter scan keeps.
    """
    members = _np.asarray(members, dtype=_np.int64)
    if members.size == 0:
        return members
    offsets = as_index_array(offsets)
    degrees = offsets[members + 1] - offsets[members]
    members = members[degrees >= min_degree]
    if not needed or members.size == 0:
        return members
    flat, counts = _gather_rows(members, offsets, as_index_array(neighbors))
    flat_labels = as_index_array(label_ids)[flat]
    keep = _np.ones(members.size, dtype=bool)
    for lid, required in needed:
        keep &= _segment_counts(flat_labels == lid, counts) >= required
        if not keep.any():
            break
    return members[keep]


def ac_filter(dom_a, dom_b, offsets, neighbors):
    """One arc-consistency direction: members of ``dom_a`` with a neighbor in
    ``dom_b`` (both sorted ascending).  Replaces the per-member bisect probes
    of the scalar sweep with one gather + membership + segmented reduction.
    """
    dom_a = _np.asarray(dom_a, dtype=_np.int64)
    dom_b = _np.asarray(dom_b, dtype=_np.int64)
    if dom_a.size == 0 or dom_b.size == 0:
        return dom_a[:0]
    flat, counts = _gather_rows(dom_a, as_index_array(offsets), as_index_array(neighbors))
    hits = _segment_counts(in_sorted(dom_b, flat), counts)
    return dom_a[hits > 0]


def in_sorted(sorted_values, queries):
    """Boolean membership of ``queries`` in the sorted array ``sorted_values``."""
    sorted_values = _np.asarray(sorted_values)
    queries = _np.asarray(queries)
    if sorted_values.size == 0:
        return _np.zeros(queries.shape, dtype=bool)
    positions = _np.searchsorted(sorted_values, queries)
    positions[positions == sorted_values.size] = sorted_values.size - 1
    return sorted_values[positions] == queries


def intersect_sorted(base, *others):
    """Intersection of sorted index arrays, ascending (galloping membership).

    The result preserves ``base``'s order, which is ascending for CSR rows —
    exactly the enumeration order of the scalar shortest-row-with-bisects
    pool, so search sequences are unchanged when this kernel drives them.
    """
    result = _np.asarray(base)
    for other in others:
        if result.size == 0:
            break
        result = result[in_sorted(_np.asarray(other), result)]
    return result


def filter_rows(members, allowed, offsets, neighbors):
    """Bulk ``row(m) ∩ allowed`` for every ``m`` in ``members``.

    ``allowed`` must be sorted ascending.  Returns ``(flat, bounds)`` where
    the kept neighbors of ``members[i]`` are ``flat[bounds[i]:bounds[i+1]]``
    (each segment ascending), plus the number of row entries dropped.  This
    is the precompute behind the matcher's candidate adjacency: one pass over
    all rows replaces a per-visit membership probe during search.
    """
    members = _np.asarray(members, dtype=_np.int64)
    allowed = _np.asarray(allowed, dtype=_np.int64)
    flat, counts = _gather_rows(members, as_index_array(offsets), as_index_array(neighbors))
    if flat.size == 0:
        bounds = _np.zeros(members.size + 1, dtype=_np.int64)
        return flat, bounds, 0
    mask = in_sorted(allowed, flat)
    kept = _segment_counts(mask, counts)
    bounds = _np.concatenate(([0], _np.cumsum(kept)))
    return flat[mask], bounds, int(flat.size - int(kept.sum()))


# --------------------------------------------------------------------------- #
# overlap kernels
# --------------------------------------------------------------------------- #
#: Posting lists longer than this are paired via per-list ``triu_indices``
#: instead of the shift-by-delta sweep (whose pass count equals the longest
#: list); below it the sweep touches every list in O(max_len) array passes.
_SHIFT_SWEEP_MAX_LEN = 64


def merge_postings(postings, num_ids):
    """Unique conflicting id pairs from posting lists, as two int arrays.

    ``postings`` is an iterable of ascending id lists (the inverted-index
    values); two ids conflict iff they share a list.  Emission is bulk: short
    lists go through a shift-by-delta sweep over one concatenated array (pass
    ``d`` pairs every element with the element ``d`` slots later in the same
    segment), long lists through per-list ``triu_indices``; duplicates across
    lists collapse via ``np.unique`` on ``a * num_ids + b`` encoded keys.
    Each returned pair has ``a < b`` (lists ascend), matching the nested-loop
    scalar construction's edge set exactly.
    """
    small_values = []
    small_lengths = []
    pair_chunks = []
    for ids in postings:
        t = len(ids)
        if t < 2:
            continue
        if t <= _SHIFT_SWEEP_MAX_LEN:
            small_values.extend(ids)
            small_lengths.append(t)
        else:
            arr = _np.asarray(ids, dtype=_np.int64)
            ia, ib = _np.triu_indices(t, k=1)
            pair_chunks.append(arr[ia] * num_ids + arr[ib])
    if small_lengths:
        flat = _np.asarray(small_values, dtype=_np.int64)
        lengths = _np.asarray(small_lengths, dtype=_np.int64)
        segment = _np.repeat(_np.arange(lengths.size), lengths)
        for d in range(1, int(lengths.max())):
            same = segment[:-d] == segment[d:]
            if not same.any():
                break
            pair_chunks.append(flat[:-d][same] * num_ids + flat[d:][same])
    if not pair_chunks:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty
    encoded = _np.unique(_np.concatenate(pair_chunks))
    return encoded // num_ids, encoded % num_ids
