"""Classic graph algorithms needed by the miners.

Everything here operates on the :class:`~repro.graph.view.GraphView`
protocol, so the same call works on a mutable
:class:`~repro.graph.labeled_graph.LabeledGraph` (patterns, spiders) and on
an immutable :class:`~repro.graph.frozen.FrozenGraph` snapshot (the data
graph).  BFS-shaped kernels carry a CSR fast path: when the input is frozen
they run entirely in flat int arrays (dense indices, list frontiers) and only
translate back to vertex identifiers at the boundary, which is what makes
whole-graph distance sweeps on large data graphs several times faster than
the dict-of-sets walk.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .frozen import FrozenGraph
from .labeled_graph import GraphError, Vertex
from .view import GraphView


def bfs_distances(graph: GraphView, source: Vertex) -> Dict[Vertex, int]:
    """Unweighted shortest-path distances from ``source`` to every reachable vertex."""
    if isinstance(graph, FrozenGraph):
        dist = graph.bfs_levels(graph.index_of(source))
        ids = graph.vertex_ids
        return {ids[i]: d for i, d in enumerate(dist) if d >= 0}
    if source not in graph:
        raise GraphError(f"vertex {source!r} does not exist")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def shortest_path_length(graph: GraphView, source: Vertex, target: Vertex) -> int:
    """Length of the shortest path between ``source`` and ``target``.

    Raises :class:`GraphError` when either endpoint is missing (both are
    validated up front, uniformly) or when the two vertices are disconnected.
    """
    if source not in graph:
        raise GraphError(f"vertex {source!r} does not exist")
    if target not in graph:
        raise GraphError(f"vertex {target!r} does not exist")
    dist = bfs_distances(graph, source)
    if target not in dist:
        raise GraphError(f"{source!r} and {target!r} are not connected")
    return dist[target]


def connected_components(graph: GraphView) -> List[Set[Vertex]]:
    """All connected components, largest first."""
    if isinstance(graph, FrozenGraph):
        components = [
            {graph.vertex_ids[i] for i in indices} for indices in _csr_components(graph)
        ]
        components.sort(key=len, reverse=True)
        return components
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = set(bfs_distances(graph, start))
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def _csr_components(graph: FrozenGraph) -> List[List[int]]:
    """Connected components of a frozen graph, in index space."""
    n = graph.num_vertices
    offsets = graph.offsets
    nbrs = graph.neighbor_indices
    seen = bytearray(n)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        component = [start]
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in nbrs[offsets[u]:offsets[u + 1]]:
                    if not seen[v]:
                        seen[v] = 1
                        component.append(v)
                        nxt.append(v)
            frontier = nxt
        components.append(component)
    return components


def is_connected(graph: GraphView) -> bool:
    """Whether the graph is connected.  The empty graph counts as connected."""
    if graph.num_vertices == 0:
        return True
    if isinstance(graph, FrozenGraph):
        reached, _ = graph.eccentricity_at(0)
        return reached == graph.num_vertices
    start = next(iter(graph.vertices()))
    return len(bfs_distances(graph, start)) == graph.num_vertices


def eccentricity(graph: GraphView, vertex: Vertex) -> int:
    """Largest shortest-path distance from ``vertex`` to any reachable vertex."""
    if isinstance(graph, FrozenGraph):
        reached, level = graph.eccentricity_at(graph.index_of(vertex))
        if reached != graph.num_vertices:
            raise GraphError("eccentricity is undefined on a disconnected graph")
        return level
    dist = bfs_distances(graph, vertex)
    if len(dist) != graph.num_vertices:
        raise GraphError("eccentricity is undefined on a disconnected graph")
    return max(dist.values())


def diameter(graph: GraphView) -> int:
    """Exact diameter (max shortest-path distance over all pairs).

    The paper writes ``diam(G)``.  Patterns are small so the O(|V| * (|V|+|E|))
    all-sources BFS is acceptable.
    """
    if graph.num_vertices == 0:
        return 0
    best = 0
    for v in graph.vertices():
        best = max(best, eccentricity(graph, v))
    return best


def radius_from(graph: GraphView, vertex: Vertex) -> int:
    """Eccentricity of ``vertex`` — the ``r`` for which the pattern is r-bounded from it."""
    return eccentricity(graph, vertex)


def graph_radius(graph: GraphView) -> int:
    """Minimum eccentricity over all vertices (the classic graph radius)."""
    if graph.num_vertices == 0:
        return 0
    return min(eccentricity(graph, v) for v in graph.vertices())


def center_vertices(graph: GraphView) -> List[Vertex]:
    """Vertices whose eccentricity equals the graph radius."""
    if graph.num_vertices == 0:
        return []
    ecc = {v: eccentricity(graph, v) for v in graph.vertices()}
    r = min(ecc.values())
    return [v for v, e in ecc.items() if e == r]


def is_r_bounded_from(graph: GraphView, vertex: Vertex, r: int) -> bool:
    """True if every vertex of ``graph`` is within distance ``r`` of ``vertex``.

    This is the paper's condition for ``graph`` being an r-spider with head
    ``vertex`` (Definition 4), ignoring frequency.
    """
    if isinstance(graph, FrozenGraph):
        source = graph.index_of(vertex)
        if r < 0:
            # bfs_levels treats a negative radius as "unbounded"; the answer
            # for a negative bound is always False (matches the dict path).
            return False
        dist = graph.bfs_levels(source, radius=r)
        return all(d >= 0 for d in dist)
    if vertex not in graph:
        raise GraphError(f"vertex {vertex!r} does not exist")
    dist = bfs_distances(graph, vertex)
    if len(dist) != graph.num_vertices:
        return False
    return max(dist.values()) <= r


def effective_diameter(graph: GraphView, percentile: float = 0.9,
                       sample_size: Optional[int] = None,
                       rng: Optional[random.Random] = None) -> int:
    """The ``percentile`` (default 90th) percentile of pairwise distances.

    The paper cites effective diameters (e.g. DBLP <= 9) as justification for
    the ``Dmax`` bound.  For large graphs a vertex sample can be used.
    """
    if not 0.0 < percentile <= 1.0:
        raise ValueError("percentile must be in (0, 1]")
    vertices = list(graph.vertices())
    if not vertices:
        return 0
    if sample_size is not None and sample_size < len(vertices):
        rng = rng or random.Random(0)
        vertices = rng.sample(vertices, sample_size)
    distances: List[int] = []
    if isinstance(graph, FrozenGraph):
        for source in vertices:
            levels = graph.bfs_levels(graph.index_of(source))
            distances.extend(d for d in levels if d > 0)
    else:
        for source in vertices:
            dist = bfs_distances(graph, source)
            distances.extend(d for v, d in dist.items() if v != source)
    if not distances:
        return 0
    distances.sort()
    index = min(len(distances) - 1, int(percentile * len(distances)))
    return distances[index]


def triangles(graph: GraphView) -> int:
    """Total number of triangles in the graph."""
    count = 0
    for u in graph.vertices():
        nbrs = graph.neighbors(u)
        for v in nbrs:
            if repr(v) <= repr(u):
                continue
            count += sum(1 for w in graph.neighbors(v) if w in nbrs and repr(w) > repr(v))
    return count


def greedy_maximum_independent_set(
    adjacency: Dict[Hashable, Set[Hashable]],
) -> Set[Hashable]:
    """Greedy (min-degree first) independent set on an arbitrary adjacency dict.

    Used by the overlap-graph support measures when exact MIS is too costly.
    The greedy value is a lower bound on the true MIS size, which keeps the
    support measure anti-monotone in the "safe" direction (never over-counts).
    """
    remaining = {v: set(n) for v, n in adjacency.items()}
    chosen: Set[Hashable] = set()
    heap = [(len(n), repr(v), v) for v, n in remaining.items()]
    heapq.heapify(heap)
    removed: Set[Hashable] = set()
    while heap:
        _, _, v = heapq.heappop(heap)
        if v in removed or v not in remaining:
            continue
        chosen.add(v)
        removed.add(v)
        for u in list(remaining.get(v, ())):
            removed.add(u)
            for w in remaining.get(u, ()):
                remaining.get(w, set()).discard(u)
            remaining.pop(u, None)
        remaining.pop(v, None)
    return chosen


def degeneracy_ordered_independent_set(
    adjacency: Dict[Hashable, Set[Hashable]],
) -> Set[Hashable]:
    """Greedy independent set along the degeneracy order of the conflict graph.

    Repeatedly selects the vertex of minimum *current* degree (ties broken by
    ``repr``), adds it to the set and deletes its closed neighbourhood,
    updating the remaining degrees — i.e. the selection follows the degeneracy
    ordering rather than the static initial degrees used by
    :func:`greedy_maximum_independent_set`.  The result is still a lower bound
    on the true MIS (safe for anti-monotone support pruning) but a tighter
    one: on a d-degenerate conflict graph it is guaranteed to pick at least
    ``n / (d + 1)`` vertices.  Fully deterministic for a fixed adjacency dict.
    """
    degree = {v: len(n) for v, n in adjacency.items()}
    remaining = {v: set(n) for v, n in adjacency.items()}
    heap = [(d, repr(v), v) for v, d in degree.items()]
    heapq.heapify(heap)
    chosen: Set[Hashable] = set()
    removed: Set[Hashable] = set()
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in removed or d != degree[v]:
            continue  # deleted, or a stale entry (a fresher one is queued)
        chosen.add(v)
        removed.add(v)
        for u in remaining[v]:
            if u in removed:
                continue
            removed.add(u)
            for w in remaining[u]:
                if w not in removed:
                    remaining[w].discard(u)
                    degree[w] -= 1
                    heapq.heappush(heap, (degree[w], repr(w), w))
    return chosen


def exact_maximum_independent_set(
    adjacency: Dict[Hashable, Set[Hashable]],
    limit: int = 20,
) -> Set[Hashable]:
    """Exact MIS by branch and bound, for at most ``limit`` vertices.

    Raises :class:`ValueError` when the instance is larger than ``limit`` —
    callers fall back to :func:`greedy_maximum_independent_set`.
    """
    vertices = list(adjacency)
    if len(vertices) > limit:
        raise ValueError(f"exact MIS limited to {limit} vertices, got {len(vertices)}")

    best: Set[Hashable] = set()

    def solve(candidates: List[Hashable], current: Set[Hashable]) -> None:
        nonlocal best
        if len(current) + len(candidates) <= len(best):
            return
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        v = candidates[0]
        rest = candidates[1:]
        # Branch 1: include v.
        allowed = [u for u in rest if u not in adjacency[v]]
        solve(allowed, current | {v})
        # Branch 2: exclude v.
        solve(rest, current)

    solve(vertices, set())
    return best


def degree_histogram(graph: GraphView) -> Dict[int, int]:
    """degree → number of vertices with that degree."""
    if isinstance(graph, FrozenGraph):
        return graph.degree_histogram()
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def spanning_tree_edges(
    graph: GraphView, root: Optional[Vertex] = None
) -> List[Tuple[Vertex, Vertex]]:
    """Edges of a BFS spanning forest (a tree when the graph is connected)."""
    edges: List[Tuple[Vertex, Vertex]] = []
    seen: Set[Vertex] = set()
    order: Iterable[Vertex]
    if root is not None:
        order = [root] + [v for v in graph.vertices() if v != root]
    else:
        order = graph.vertices()
    for start in order:
        if start in seen:
            continue
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    edges.append((u, v))
                    queue.append(v)
    return edges
