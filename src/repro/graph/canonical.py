"""Canonical forms for small labeled graphs.

Graph miners constantly need to answer "have I generated this pattern
before?".  The expensive way is pairwise isomorphism testing; the standard
trick — used by gSpan's DFS codes and by our SpiderMine implementation — is to
map every pattern to a *canonical code*: a string such that two labeled graphs
receive the same string iff they are isomorphic.

For the small graphs that appear as patterns (tens of vertices) a refinement +
backtracking canonicalisation is plenty fast and, unlike heuristic codes, is
exact.  The algorithm:

1. Colour vertices by (label, degree) and iteratively refine colours by the
   multiset of neighbour colours (1-dimensional Weisfeiler–Leman).
2. If the colouring is discrete we are done; otherwise branch on every vertex
   of the first non-singleton colour class (individualisation-refinement) and
   keep the lexicographically smallest resulting adjacency code.

The resulting :func:`canonical_code` is used as a dict key everywhere patterns
are deduplicated, and :func:`canonical_form` returns an isomorphic copy of the
graph on vertices ``0..n-1`` in canonical order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .labeled_graph import LabeledGraph, Vertex


def _refine(graph: LabeledGraph, colors: Dict[Vertex, int]) -> Dict[Vertex, int]:
    """Iteratively refine ``colors`` until stable (1-WL with initial colours)."""
    vertices = list(graph.vertices())
    current = dict(colors)
    while True:
        signatures = {}
        for v in vertices:
            neighbor_colors = sorted(current[u] for u in graph.neighbors(v))
            signatures[v] = (current[v], tuple(neighbor_colors))
        # Re-index signatures to compact integers, ordered by signature value.
        ordered = sorted(set(signatures.values()))
        index = {sig: i for i, sig in enumerate(ordered)}
        refined = {v: index[signatures[v]] for v in vertices}
        if refined == current:
            return refined
        current = refined


def _initial_colors(graph: LabeledGraph) -> Dict[Vertex, int]:
    vertices = list(graph.vertices())
    keys = {v: (repr(graph.label(v)), graph.degree(v)) for v in vertices}
    ordered = sorted(set(keys.values()))
    index = {key: i for i, key in enumerate(ordered)}
    return {v: index[keys[v]] for v in vertices}


def _color_classes(colors: Dict[Vertex, int]) -> List[List[Vertex]]:
    classes: Dict[int, List[Vertex]] = {}
    for v, c in colors.items():
        classes.setdefault(c, []).append(v)
    return [classes[c] for c in sorted(classes)]


def _code_for_order(graph: LabeledGraph, order: Sequence[Vertex]) -> str:
    """Serialise the graph under a total vertex order into a code string."""
    label_part = ",".join(repr(graph.label(v)) for v in order)
    edge_bits: List[str] = []
    n = len(order)
    for i in range(n):
        u = order[i]
        nbrs = graph.neighbors(u)
        row = ["1" if order[j] in nbrs else "0" for j in range(i + 1, n)]
        edge_bits.append("".join(row))
    return label_part + "|" + "|".join(edge_bits)


def _canonical_order(graph: LabeledGraph) -> List[Vertex]:
    """Find the vertex order whose code is lexicographically smallest."""
    vertices = list(graph.vertices())
    if not vertices:
        return []

    best_code: Optional[str] = None
    best_order: List[Vertex] = []

    def search(colors: Dict[Vertex, int]) -> None:
        nonlocal best_code, best_order
        colors = _refine(graph, colors)
        classes = _color_classes(colors)
        target = next((c for c in classes if len(c) > 1), None)
        if target is None:
            order = sorted(vertices, key=lambda v: colors[v])
            code = _code_for_order(graph, order)
            if best_code is None or code < best_code:
                best_code = code
                best_order = order
            return
        # Individualise each vertex of the first non-singleton class.  Vertices
        # of the class that are *twins* (identical open or closed labeled
        # neighbourhoods) are interchangeable by an automorphism that swaps
        # only the two of them, so branching on one representative per twin
        # group is enough — this is what keeps stars/cliques of same-label
        # vertices (common in label-poor graphs) from exploding the search.
        new_color = max(colors.values()) + 1
        seen_twin_keys = set()
        for v in sorted(target, key=repr):
            neighbors = graph.neighbors(v)
            open_key = ("o", frozenset(neighbors))
            closed_key = ("c", frozenset(neighbors | {v}))
            if open_key in seen_twin_keys or closed_key in seen_twin_keys:
                continue
            seen_twin_keys.add(open_key)
            seen_twin_keys.add(closed_key)
            branched = dict(colors)
            branched[v] = new_color
            search(branched)

    search(_initial_colors(graph))
    return best_order


def canonical_order(graph: LabeledGraph) -> List[Vertex]:
    """The canonical vertex ordering of ``graph`` (stable across isomorphic copies)."""
    return _canonical_order(graph)


def canonical_code(graph: LabeledGraph) -> str:
    """A string equal for two labeled graphs iff they are isomorphic."""
    order = _canonical_order(graph)
    return _code_for_order(graph, order)


def canonical_form(graph: LabeledGraph) -> LabeledGraph:
    """An isomorphic copy of ``graph`` on vertices ``0..n-1`` in canonical order."""
    order = _canonical_order(graph)
    mapping = {v: i for i, v in enumerate(order)}
    return graph.relabeled(mapping)


def are_isomorphic_by_code(first: LabeledGraph, second: LabeledGraph) -> bool:
    """Exact labeled-graph isomorphism decided through canonical codes."""
    if first.num_vertices != second.num_vertices or first.num_edges != second.num_edges:
        return False
    if first.label_counts() != second.label_counts():
        return False
    return canonical_code(first) == canonical_code(second)
