"""Vertex-labeled undirected graph used throughout the SpiderMine reproduction.

The paper's input is a single massive vertex-labeled network.  ``LabeledGraph``
is a light-weight adjacency-set representation with a label index so that
label-constrained traversals (the inner loop of every miner in this package)
stay O(degree) instead of O(|V|).

Vertices are arbitrary hashable identifiers (ints in all generators).  Edges
are undirected and stored once per endpoint.  Self-loops are rejected because
none of the mining algorithms in the paper consider them; parallel edges are
impossible by construction (adjacency sets).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Vertex = Hashable
Label = Hashable
Edge = Tuple[Vertex, Vertex]


def normalise_edge(u: Vertex, v: Vertex) -> Edge:
    """Canonical endpoint order for an undirected edge: repr-lower first.

    Every place that stores or compares concrete data-graph edges — embedding
    edge images, growth occurrences, canonical graph emission — must use this
    one helper so the orderings can never drift apart.
    """
    return (u, v) if repr(u) <= repr(v) else (v, u)


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


class LabeledGraph:
    """An undirected graph whose vertices carry labels.

    Parameters
    ----------
    directed:
        Kept for API completeness.  The SpiderMine paper works on undirected
        graphs (the Jeti call graph is treated as a labeled undirected graph),
        so only ``directed=False`` is supported; passing ``True`` raises.
    """

    __slots__ = (
        "_labels",
        "_adj",
        "_label_index",
        "_num_edges",
        "_neighbor_cache",
        "_label_set_cache",
        "_serial",
        "_next_serial",
        "_mutations",
    )

    def __init__(self, directed: bool = False) -> None:
        if directed:
            raise GraphError("LabeledGraph only supports undirected graphs")
        self._labels: Dict[Vertex, Label] = {}
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._label_index: Dict[Label, Set[Vertex]] = {}
        self._num_edges = 0
        # Memoised neighbors() / vertices_with_label() frozensets, invalidated
        # on mutation.  Built in canonical (repr-sorted) insertion order so the
        # returned sets iterate identically across backends — see
        # FrozenGraph.neighbors.
        self._neighbor_cache: Dict[Vertex, FrozenSet[Vertex]] = {}
        self._label_set_cache: Dict[Label, FrozenSet[Vertex]] = {}
        # Monotonic insertion serial per vertex: lets subgraph() recover
        # insertion order for a small selection without scanning the graph.
        self._serial: Dict[Vertex, int] = {}
        self._next_serial = 0
        # Monotonic structural-mutation counter: external memoisers (e.g.
        # Embedding.edge_image) use (graph identity, mutation_count) as a
        # cache token that every add/remove invalidates — including rewrites
        # that leave num_vertices/num_edges unchanged.
        self._mutations = 0

    @property
    def mutation_count(self) -> int:
        """Bumped by every structural mutation; a token for external caches."""
        return self._mutations

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, label: Label) -> None:
        """Add ``vertex`` with ``label``; re-adding with the same label is a no-op."""
        if vertex in self._labels:
            if self._labels[vertex] != label:
                raise GraphError(
                    f"vertex {vertex!r} already exists with label "
                    f"{self._labels[vertex]!r}, cannot relabel to {label!r}"
                )
            return
        self._labels[vertex] = label
        self._adj[vertex] = set()
        self._label_index.setdefault(label, set()).add(vertex)
        self._label_set_cache.pop(label, None)
        self._serial[vertex] = self._next_serial
        self._next_serial += 1
        self._mutations += 1

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``.  Both endpoints must exist."""
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if u not in self._labels or v not in self._labels:
            missing = u if u not in self._labels else v
            raise GraphError(f"vertex {missing!r} must be added before the edge")
        if v in self._adj[u]:
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._neighbor_cache.pop(u, None)
        self._neighbor_cache.pop(v, None)
        self._mutations += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}`` if present; raise if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._neighbor_cache.pop(u, None)
        self._neighbor_cache.pop(v, None)
        self._mutations += 1

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges in O(deg) time.

        Neighbors are unlinked directly instead of going through
        :meth:`remove_edge`, whose per-edge membership re-checks would make
        vertex removal quadratic in dense neighborhoods.
        """
        if vertex not in self._labels:
            raise GraphError(f"vertex {vertex!r} does not exist")
        incident = self._adj.pop(vertex)
        self._neighbor_cache.pop(vertex, None)
        for neighbor in incident:
            self._adj[neighbor].discard(vertex)
            self._neighbor_cache.pop(neighbor, None)
        self._num_edges -= len(incident)
        label = self._labels.pop(vertex)
        self._label_index[label].discard(vertex)
        self._label_set_cache.pop(label, None)
        if not self._label_index[label]:
            del self._label_index[label]
        del self._serial[vertex]
        self._mutations += 1

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labels)

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once, in canonical order.

        Edges are emitted at their earlier-added endpoint, later endpoints in
        insertion order — exactly the order ``FrozenGraph.edges`` produces
        from its index-sorted rows, so consumers that truncate or tie-break
        on edge order behave identically on both backends.
        """
        position = {v: i for i, v in enumerate(self._labels)}
        for u in self._labels:
            u_position = position[u]
            later = [v for v in self._adj[u] if position[v] > u_position]
            later.sort(key=position.__getitem__)
            for v in later:
                yield (u, v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def label(self, vertex: Vertex) -> Label:
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def labels(self) -> Dict[Vertex, Label]:
        """A copy of the vertex → label mapping."""
        return dict(self._labels)

    def label_set(self) -> Set[Label]:
        return set(self._label_index)

    def label_counts(self) -> Counter:
        """How many vertices carry each label."""
        return Counter({label: len(vs) for label, vs in self._label_index.items()})

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        cached = self._label_set_cache.get(label)
        if cached is None:
            members = self._label_index.get(label)
            if not members:
                return frozenset()
            # Canonical insertion order: identical layout on every backend.
            cached = frozenset(sorted(members, key=repr))
            self._label_set_cache[label] = cached
        return cached

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        cached = self._neighbor_cache.get(vertex)
        if cached is None:
            try:
                adjacent = self._adj[vertex]
            except KeyError:
                raise GraphError(f"vertex {vertex!r} does not exist") from None
            # Canonical insertion order: a frozenset's iteration order depends
            # on the order its elements were inserted (collision resolution),
            # so building from a sorted sequence makes iteration identical to
            # the same set built by any other backend.
            cached = frozenset(sorted(adjacent, key=repr))
            self._neighbor_cache[vertex] = cached
        return cached

    def degree(self, vertex: Vertex) -> int:
        try:
            return len(self._adj[vertex])
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def average_degree(self) -> float:
        if not self._labels:
            return 0.0
        return 2.0 * self._num_edges / len(self._labels)

    def max_degree(self) -> int:
        if not self._labels:
            return 0
        return max(len(n) for n in self._adj.values())

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "LabeledGraph":
        other = LabeledGraph()
        other._labels = dict(self._labels)
        other._adj = {v: set(n) for v, n in self._adj.items()}
        other._label_index = {l: set(vs) for l, vs in self._label_index.items()}
        other._num_edges = self._num_edges
        other._neighbor_cache = dict(self._neighbor_cache)
        other._label_set_cache = dict(self._label_set_cache)
        other._serial = dict(self._serial)
        other._next_serial = self._next_serial
        other._mutations = self._mutations
        return other

    def subgraph(self, vertices: Iterable[Vertex]) -> "LabeledGraph":
        """The induced subgraph on ``vertices``.

        Vertices and edges are added in this graph's insertion order (not the
        hash order of the ``vertices`` set), matching ``FrozenGraph.subgraph``
        so derived subgraphs iterate identically on both backends.
        """
        selected = set(vertices)
        unknown = selected - self._labels.keys()
        if unknown:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, unknown))}")
        ordered = sorted(selected, key=self._serial.__getitem__)
        position = {v: i for i, v in enumerate(ordered)}
        sub = LabeledGraph()
        for v in ordered:
            sub.add_vertex(v, self._labels[v])
        for v in ordered:
            v_position = position[v]
            later = [u for u in self._adj[v] if position.get(u, -1) > v_position]
            later.sort(key=position.__getitem__)
            for u in later:
                sub.add_edge(v, u)
        return sub

    def edge_subgraph(self, edge_list: Iterable[Edge]) -> "LabeledGraph":
        """The subgraph containing exactly ``edge_list`` and their endpoints."""
        sub = LabeledGraph()
        for u, v in edge_list:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
            sub.add_vertex(u, self._labels[u])
            sub.add_vertex(v, self._labels[v])
            sub.add_edge(u, v)
        return sub

    def relabeled(self, mapping: Optional[Dict[Vertex, Vertex]] = None) -> "LabeledGraph":
        """Return a copy with vertices renamed to 0..n-1 (or by ``mapping``)."""
        if mapping is None:
            mapping = {v: i for i, v in enumerate(sorted(self._labels, key=repr))}
        out = LabeledGraph()
        for v, label in self._labels.items():
            out.add_vertex(mapping[v], label)
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v])
        return out

    # ------------------------------------------------------------------ #
    # traversal helpers used by the miners
    # ------------------------------------------------------------------ #
    def bfs_within(self, source: Vertex, radius: int) -> Dict[Vertex, int]:
        """Vertices within ``radius`` hops of ``source`` → their distance."""
        if source not in self._labels:
            raise GraphError(f"vertex {source!r} does not exist")
        if radius < 0:
            raise GraphError("radius must be non-negative")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            if dist[u] == radius:
                continue
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def neighborhood_subgraph(self, source: Vertex, radius: int) -> "LabeledGraph":
        """The induced subgraph on the ``radius``-ball around ``source``."""
        return self.subgraph(self.bfs_within(source, radius))

    def freeze(self) -> "FrozenGraph":
        """An immutable CSR snapshot of this graph (see :mod:`repro.graph.frozen`).

        The snapshot shares nothing with this graph: later mutations here do
        not affect it.  Freeze the data graph once after construction and run
        the miners on the snapshot; keep pattern graphs mutable.
        """
        from .frozen import FrozenGraph

        return FrozenGraph(self)

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={len(self._label_index)})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality on the *identified* graph (same vertex ids)."""
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._labels == other._labels and self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - graphs are not hashable
        raise TypeError("LabeledGraph is mutable and unhashable")

    def degree_sequence(self) -> List[int]:
        return sorted((len(n) for n in self._adj.values()), reverse=True)

    def density(self) -> float:
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))


def graph_from_edges(
    edges: Iterable[Tuple[Vertex, Vertex]],
    labels: Dict[Vertex, Label],
) -> LabeledGraph:
    """Build a :class:`LabeledGraph` from an edge list plus a label map.

    Isolated vertices can be included by listing them in ``labels`` even if no
    edge mentions them.
    """
    graph = LabeledGraph()
    for vertex, label in labels.items():
        graph.add_vertex(vertex, label)
    for u, v in edges:
        if u not in labels or v not in labels:
            missing = u if u not in labels else v
            raise GraphError(f"edge endpoint {missing!r} has no label")
        graph.add_edge(u, v)
    return graph
