"""Vertex-labeled undirected graph used throughout the SpiderMine reproduction.

The paper's input is a single massive vertex-labeled network.  ``LabeledGraph``
is a light-weight adjacency-set representation with a label index so that
label-constrained traversals (the inner loop of every miner in this package)
stay O(degree) instead of O(|V|).

Vertices are arbitrary hashable identifiers (ints in all generators).  Edges
are undirected and stored once per endpoint.  Self-loops are rejected because
none of the mining algorithms in the paper consider them; parallel edges are
impossible by construction (adjacency sets).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Vertex = Hashable
Label = Hashable
Edge = Tuple[Vertex, Vertex]


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


class LabeledGraph:
    """An undirected graph whose vertices carry labels.

    Parameters
    ----------
    directed:
        Kept for API completeness.  The SpiderMine paper works on undirected
        graphs (the Jeti call graph is treated as a labeled undirected graph),
        so only ``directed=False`` is supported; passing ``True`` raises.
    """

    __slots__ = ("_labels", "_adj", "_label_index", "_num_edges")

    def __init__(self, directed: bool = False) -> None:
        if directed:
            raise GraphError("LabeledGraph only supports undirected graphs")
        self._labels: Dict[Vertex, Label] = {}
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._label_index: Dict[Label, Set[Vertex]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, label: Label) -> None:
        """Add ``vertex`` with ``label``; re-adding with the same label is a no-op."""
        if vertex in self._labels:
            if self._labels[vertex] != label:
                raise GraphError(
                    f"vertex {vertex!r} already exists with label "
                    f"{self._labels[vertex]!r}, cannot relabel to {label!r}"
                )
            return
        self._labels[vertex] = label
        self._adj[vertex] = set()
        self._label_index.setdefault(label, set()).add(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``.  Both endpoints must exist."""
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if u not in self._labels or v not in self._labels:
            missing = u if u not in self._labels else v
            raise GraphError(f"vertex {missing!r} must be added before the edge")
        if v in self._adj[u]:
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}`` if present; raise if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges."""
        if vertex not in self._labels:
            raise GraphError(f"vertex {vertex!r} does not exist")
        for neighbor in list(self._adj[vertex]):
            self.remove_edge(vertex, neighbor)
        label = self._labels.pop(vertex)
        self._label_index[label].discard(vertex)
        if not self._label_index[label]:
            del self._label_index[label]
        del self._adj[vertex]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labels)

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once."""
        seen: Set[Vertex] = set()
        for u in self._labels:
            for v in self._adj[u]:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def label(self, vertex: Vertex) -> Label:
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def labels(self) -> Dict[Vertex, Label]:
        """A copy of the vertex → label mapping."""
        return dict(self._labels)

    def label_set(self) -> Set[Label]:
        return set(self._label_index)

    def label_counts(self) -> Counter:
        """How many vertices carry each label."""
        return Counter({label: len(vs) for label, vs in self._label_index.items()})

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        return frozenset(self._label_index.get(label, frozenset()))

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        try:
            return frozenset(self._adj[vertex])
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def degree(self, vertex: Vertex) -> int:
        try:
            return len(self._adj[vertex])
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def average_degree(self) -> float:
        if not self._labels:
            return 0.0
        return 2.0 * self._num_edges / len(self._labels)

    def max_degree(self) -> int:
        if not self._labels:
            return 0
        return max(len(n) for n in self._adj.values())

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "LabeledGraph":
        other = LabeledGraph()
        other._labels = dict(self._labels)
        other._adj = {v: set(n) for v, n in self._adj.items()}
        other._label_index = {l: set(vs) for l, vs in self._label_index.items()}
        other._num_edges = self._num_edges
        return other

    def subgraph(self, vertices: Iterable[Vertex]) -> "LabeledGraph":
        """The induced subgraph on ``vertices``."""
        selected = set(vertices)
        unknown = selected - self._labels.keys()
        if unknown:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, unknown))}")
        sub = LabeledGraph()
        for v in selected:
            sub.add_vertex(v, self._labels[v])
        for v in selected:
            for u in self._adj[v]:
                if u in selected and not sub.has_edge(u, v):
                    sub.add_edge(u, v)
        return sub

    def edge_subgraph(self, edge_list: Iterable[Edge]) -> "LabeledGraph":
        """The subgraph containing exactly ``edge_list`` and their endpoints."""
        sub = LabeledGraph()
        for u, v in edge_list:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
            sub.add_vertex(u, self._labels[u])
            sub.add_vertex(v, self._labels[v])
            sub.add_edge(u, v)
        return sub

    def relabeled(self, mapping: Optional[Dict[Vertex, Vertex]] = None) -> "LabeledGraph":
        """Return a copy with vertices renamed to 0..n-1 (or by ``mapping``)."""
        if mapping is None:
            mapping = {v: i for i, v in enumerate(sorted(self._labels, key=repr))}
        out = LabeledGraph()
        for v, label in self._labels.items():
            out.add_vertex(mapping[v], label)
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v])
        return out

    # ------------------------------------------------------------------ #
    # traversal helpers used by the miners
    # ------------------------------------------------------------------ #
    def bfs_within(self, source: Vertex, radius: int) -> Dict[Vertex, int]:
        """Vertices within ``radius`` hops of ``source`` → their distance."""
        if source not in self._labels:
            raise GraphError(f"vertex {source!r} does not exist")
        if radius < 0:
            raise GraphError("radius must be non-negative")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            if dist[u] == radius:
                continue
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def neighborhood_subgraph(self, source: Vertex, radius: int) -> "LabeledGraph":
        """The induced subgraph on the ``radius``-ball around ``source``."""
        return self.subgraph(self.bfs_within(source, radius))

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={len(self._label_index)})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality on the *identified* graph (same vertex ids)."""
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._labels == other._labels and self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - graphs are not hashable
        raise TypeError("LabeledGraph is mutable and unhashable")

    def degree_sequence(self) -> List[int]:
        return sorted((len(n) for n in self._adj.values()), reverse=True)

    def density(self) -> float:
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))


def graph_from_edges(
    edges: Iterable[Tuple[Vertex, Vertex]],
    labels: Dict[Vertex, Label],
) -> LabeledGraph:
    """Build a :class:`LabeledGraph` from an edge list plus a label map.

    Isolated vertices can be included by listing them in ``labels`` even if no
    edge mentions them.
    """
    graph = LabeledGraph()
    for vertex, label in labels.items():
        graph.add_vertex(vertex, label)
    for u, v in edges:
        if u not in labels or v not in labels:
            missing = u if u not in labels else v
            raise GraphError(f"edge endpoint {missing!r} has no label")
        graph.add_edge(u, v)
    return graph
